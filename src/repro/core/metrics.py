"""Norms and effectiveness metrics (paper Sec IV-A and V-C).

The paper scores two quantities:

* ``Norm(N_E) = ||N_E||_0 / ||N_A||_0`` — the *relative norm of the error
  matrix*, which predicts whether network-aware optimization is worthwhile
  (Fig 10). A literal ℓ₀ count is useless on floating-point RPCA output
  (every entry is "nonzero"), so ℓ₀ here uses a relative magnitude threshold;
  we additionally expose the L1 ratio, which is scale-free, threshold-free
  and tracks the paper's reported values (EC2 ≈ 0.1).
* ``Norm(P_D) = ||P_D - P'_D||_0 / ||P'_D||_0`` — the *relative difference of
  long-term performance* between a prediction from a calibration prefix and
  the oracle from the whole trace (Fig 5). For the same reason we implement
  it as a relative-L1 difference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive

__all__ = [
    "pseudo_l0_norm",
    "l1_norm",
    "relative_error_norm",
    "relative_difference",
    "StabilityReport",
    "stability_report",
]


def pseudo_l0_norm(x: np.ndarray, *, rel_tol: float = 1e-3) -> int:
    """Count entries whose magnitude exceeds ``rel_tol × max|x|``.

    This is the practical ℓ₀ of the paper's objective: entries below the
    relative threshold are numerical residue, not genuine error events.
    Returns 0 for an all-zero array.
    """
    arr = np.asarray(x, dtype=np.float64)
    check_positive(rel_tol, "rel_tol")
    scale = float(np.abs(arr).max()) if arr.size else 0.0
    if scale == 0.0:
        return 0
    return int(np.count_nonzero(np.abs(arr) > rel_tol * scale))


def l1_norm(x: np.ndarray) -> float:
    """Elementwise L1 norm (sum of absolute values)."""
    return float(np.abs(np.asarray(x, dtype=np.float64)).sum())


def relative_error_norm(
    error: np.ndarray, data: np.ndarray, *, kind: str = "l1"
) -> float:
    """``Norm(N_E)`` — relative size of the error component vs. the data.

    Parameters
    ----------
    error, data:
        The TE-matrix (or its raw array) and TP-matrix array, same shape.
    kind:
        ``"l1"`` (default; ratio of L1 norms — the discriminating,
        threshold-free variant) or ``"l0"`` (ratio of pseudo-ℓ₀ counts with
        the data counted at its own scale — the paper's literal formula).
    """
    e = np.asarray(error, dtype=np.float64)
    a = np.asarray(data, dtype=np.float64)
    if e.shape != a.shape:
        raise ValueError(f"shape mismatch: error {e.shape} vs data {a.shape}")
    if kind == "l1":
        denom = l1_norm(a)
        return l1_norm(e) / denom if denom > 0 else 0.0
    if kind == "l0":
        denom = pseudo_l0_norm(a)
        return pseudo_l0_norm(e) / denom if denom > 0 else 0.0
    raise ValueError(f"kind must be 'l1' or 'l0', got {kind!r}")


def relative_difference(predicted: np.ndarray, oracle: np.ndarray) -> float:
    """``Norm(P_D)`` — relative L1 difference of two long-term estimates.

    Zero means the prediction from a calibration prefix is identical to the
    oracle computed from the full trace (paper Fig 5's y-axis).
    """
    p = np.asarray(predicted, dtype=np.float64).ravel()
    o = np.asarray(oracle, dtype=np.float64).ravel()
    if p.shape != o.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {o.shape}")
    denom = l1_norm(o)
    if denom == 0.0:
        return 0.0 if l1_norm(p) == 0.0 else np.inf
    return l1_norm(p - o) / denom


@dataclass(frozen=True, slots=True)
class StabilityReport:
    """Summary of a decomposition's stability verdict (paper Sec IV-A).

    ``norm_ne`` is the L1 relative error norm; ``verdict`` buckets it with
    the thresholds the paper reads off Fig 10: below 0.1 the network is
    stable and optimizations pay off strongly; between 0.1 and 0.2 they pay
    off moderately; above 0.5 they are hopeless.
    """

    norm_ne: float
    norm_ne_l0: float
    rank: int
    verdict: str

    STABLE_BELOW = 0.1
    MODERATE_BELOW = 0.2
    USEFUL_BELOW = 0.5


def stability_report(error: np.ndarray, data: np.ndarray, rank: int) -> StabilityReport:
    """Build a :class:`StabilityReport` from decomposition outputs."""
    ne = relative_error_norm(error, data, kind="l1")
    ne0 = relative_error_norm(error, data, kind="l0")
    if ne < StabilityReport.STABLE_BELOW:
        verdict = "stable"
    elif ne < StabilityReport.MODERATE_BELOW:
        verdict = "moderately-stable"
    elif ne < StabilityReport.USEFUL_BELOW:
        verdict = "dynamic"
    else:
        verdict = "too-dynamic"
    return StabilityReport(norm_ne=ne, norm_ne_l0=ne0, rank=int(rank), verdict=verdict)
