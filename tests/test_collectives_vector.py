"""Unit tests for the vector collectives (Scatterv/Gatherv pricing)."""

import numpy as np
import pytest

from repro.collectives.exec_model import (
    gather_time,
    gatherv_time,
    scatter_time,
    scatterv_time,
)
from repro.collectives.trees import CommTree, binomial_tree
from repro.errors import ValidationError


def uniform_net(n, beta=2.0):
    a = np.zeros((n, n))
    b = np.full((n, n), beta)
    np.fill_diagonal(b, np.inf)
    return a, b


class TestScatterv:
    def test_uniform_blocks_match_scatter(self):
        n = 8
        t = binomial_tree(n, 0)
        a, b = uniform_net(n)
        assert scatterv_time(t, a, b, np.full(n, 3.0)) == pytest.approx(
            scatter_time(t, a, b, 3.0)
        )

    def test_chain_with_unequal_blocks(self):
        # 0 → 1 → 2 with blocks (irrelevant for root) 0/2/6 bytes at β=1.
        t = CommTree.from_parent(0, np.array([-1, 0, 1]))
        a, b = uniform_net(3, beta=1.0)
        sizes = np.array([5.0, 2.0, 6.0])
        # Edge (0,1) carries 2+6=8 → t=8; edge (1,2) carries 6 → t=14.
        assert scatterv_time(t, a, b, sizes) == pytest.approx(14.0)

    def test_root_block_stays_local(self):
        t = binomial_tree(2, 0)
        a, b = uniform_net(2, beta=1.0)
        # Only rank 1's block crosses the wire.
        assert scatterv_time(t, a, b, np.array([100.0, 4.0])) == pytest.approx(4.0)

    def test_zero_blocks_allowed(self):
        t = binomial_tree(4, 0)
        a, b = uniform_net(4)
        assert scatterv_time(t, a, b, np.zeros(4)) == 0.0

    def test_negative_blocks_rejected(self):
        t = binomial_tree(3, 0)
        a, b = uniform_net(3)
        with pytest.raises(ValidationError):
            scatterv_time(t, a, b, np.array([1.0, -1.0, 1.0]))

    def test_length_validated(self):
        t = binomial_tree(3, 0)
        a, b = uniform_net(3)
        with pytest.raises(ValidationError):
            scatterv_time(t, a, b, np.ones(2))


class TestGatherv:
    def test_uniform_blocks_match_gather(self):
        n = 8
        t = binomial_tree(n, 0)
        a, b = uniform_net(n, beta=3.0)
        assert gatherv_time(t, a, b, np.full(n, 2.0)) == pytest.approx(
            gather_time(t, a, b, 2.0)
        )

    def test_duality_with_scatterv_on_symmetric_net(self):
        n = 8
        t = binomial_tree(n, 0)
        a, b = uniform_net(n, beta=4.0)
        sizes = np.arange(1.0, n + 1.0)
        assert gatherv_time(t, a, b, sizes) == pytest.approx(
            scatterv_time(t, a, b, sizes)
        )

    def test_heavy_leaf_dominates(self):
        # Chain 2 → 1 → 0 (gather to root 0): leaf carries a huge block.
        t = CommTree.from_parent(0, np.array([-1, 0, 1]))
        a, b = uniform_net(3, beta=1.0)
        sizes = np.array([0.0, 1.0, 100.0])
        # Edge (2,1) carries 100 → 100; edge (1,0) carries 101 → 201.
        assert gatherv_time(t, a, b, sizes) == pytest.approx(201.0)


class TestSimCommVectorSemantics:
    def test_unequal_scatter_priced_by_true_sizes(self):
        from repro.mpisim.comm import SimComm

        n = 2
        a, b = uniform_net(n, beta=1.0)
        comm = SimComm(a, b)
        chunks = [np.zeros(100), np.zeros(3)]  # 800 and 24 bytes
        comm.scatter(chunks, root=0)
        # Only rank 1's 24-byte chunk crosses the wire.
        assert comm.elapsed == pytest.approx(24.0)
        assert comm.stats.bytes_moved == pytest.approx(24.0)
