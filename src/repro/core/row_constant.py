"""Exact row-constant decomposition.

The paper's offline problem (Sec III) constrains the constant component to
rank *one* with **all rows equal**: ``N_D = 1ₙ pᵀ``. Under that constraint the
sparse-recovery objective separates by column, and the L1-optimal choice for
each column is its **median** across snapshots (the L1 Fermat point in one
dimension). For the paper's surrogate objective (minimum number of nonzero
error entries, i.e. the exact ℓ₀ count) the column **mode** is optimal; with
continuous measurements the mode is ill-defined, so the median — which also
minimizes the ℓ₀ count under any symmetric contamination model — is the
principled estimator.

This solver is exact, non-iterative and O(n·N² log n); it serves both as a
fast production path when the rank-one constraint is taken literally and as
a reference point in the solver ablation (DESIGN.md Sec 5).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_matrix
from .result import SolverResult

__all__ = ["RowConstantResult", "row_constant_decomposition"]

# Backward-compatible alias: every solver now returns the shared contract.
RowConstantResult = SolverResult


def row_constant_decomposition(a: np.ndarray) -> SolverResult:
    """Split ``a`` into a row-constant matrix plus residual via column medians.

    ``low_rank`` has every row equal to ``constant_row``; ``sparse`` is the
    exact residual, so ``low_rank + sparse == a`` to machine precision.
    """
    A = as_float_matrix(a, "a")
    row = np.median(A, axis=0)
    low_rank = np.broadcast_to(row, A.shape).copy()
    sparse = A - low_rank
    rank = 0 if not np.any(row) else 1
    return SolverResult(
        low_rank=low_rank,
        sparse=sparse,
        rank=rank,
        iterations=1,
        converged=True,
        residual=0.0,
        constant_row=row.copy(),
    )
