"""Fig 13 — full comparison on the simulated large-scale cluster.

The only experiment where the Topology-aware arm can exist (topology is
known to the simulator, hidden on EC2). Background traffic is tuned so the
cluster's ``Norm(N_E)`` ≈ 0.1, matching EC2. Paper shape: Topology-aware ≈
Baseline (static topology knowledge is useless under dynamics), RPCA
25–40% better than both, and 10–15% better than Heuristics; the broadcast
CDF separates the arms the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cloudsim.bands import BandTiers
from ..mapping.taskgraph import random_task_graph
from ..netsim.background import BackgroundConfig
from ..strategies.baseline import BaselineStrategy
from ..strategies.heuristics import HeuristicStrategy
from ..strategies.rpca import RPCAStrategy
from ..strategies.topology_aware import TopologyAwareStrategy
from ..utils.seeding import derive_seed, spawn_rng
from .harness import ComparisonResult, ReplayContext, collective_comparison, mapping_comparison
from .netsim_support import build_scenario, calibrate_netsim_trace

__all__ = ["Fig13Result", "run"]

MB = 1024 * 1024


@dataclass(frozen=True)
class Fig13Result:
    """Per-application comparisons including the Topology-aware arm."""

    broadcast: ComparisonResult
    scatter: ComparisonResult
    mapping: ComparisonResult
    norm_ne: float

    def normalized_table(self) -> list[tuple[str, float, float, float]]:
        rows = []
        for name in self.broadcast.times:
            rows.append(
                (
                    name,
                    self.broadcast.normalized_means()[name],
                    self.scatter.normalized_means()[name],
                    self.mapping.normalized_means()[name],
                )
            )
        return rows

    def broadcast_cdf(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        return self.broadcast.cdf(name)


def run(
    *,
    n_racks: int = 32,
    servers_per_rack: int = 32,
    cluster_size: int = 32,
    background: BackgroundConfig | None = None,
    n_snapshots: int = 20,
    time_step: int = 10,
    gap_seconds: float = 30.0,
    nbytes: float = 8.0 * MB,
    repetitions: int = 60,
    solver: str = "apg",
    core_bandwidth: float | None = None,
    seed: int = 0,
) -> Fig13Result:
    """Calibrate a netsim trace and compare all four arms on it.

    The default background (64 pairs, 100 MB, λ=5 s on the full-size
    datacenter) lands Norm(N_E) near 0.1; callers shrinking the datacenter
    should re-tune it and preserve the 3.2:1 uplink oversubscription via
    *core_bandwidth* (see :func:`~repro.experiments.netsim_support.build_scenario`).
    """
    scenario = build_scenario(
        n_racks=n_racks,
        servers_per_rack=servers_per_rack,
        cluster_size=cluster_size,
        background=background,
        core_bandwidth=core_bandwidth,
        seed=seed,
    )
    trace = calibrate_netsim_trace(
        scenario, n_snapshots=n_snapshots, gap_seconds=gap_seconds, probe_bytes=nbytes
    )
    ctx = ReplayContext(trace=trace, time_step=time_step, nbytes=nbytes)

    topo = scenario.topology
    # Nominal tiers the topology-aware arm believes: access-limited 1 Gb/s
    # inside a rack; cross-rack slightly worse to reflect the oversubscribed
    # aggregation layer it knows about (but whose load it cannot see).
    tiers = BandTiers(
        same_rack_bandwidth=topo.rack_bandwidth,
        cross_rack_bandwidth=topo.rack_bandwidth * 0.8,
        same_rack_latency=2 * topo.hop_latency,
        cross_rack_latency=4 * topo.hop_latency,
        jitter_sigma=0.0,
    )
    strategies = [
        BaselineStrategy(),
        TopologyAwareStrategy(scenario.placement(), nbytes, tiers),
        HeuristicStrategy("mean"),
        RPCAStrategy(solver, time_step=time_step),
    ]

    bcast = collective_comparison(
        ctx, strategies, op="broadcast", nbytes=nbytes,
        repetitions=repetitions, seed=derive_seed(seed, "b"),
    )
    scat = collective_comparison(
        ctx, strategies, op="scatter", nbytes=nbytes / cluster_size,
        repetitions=repetitions, seed=derive_seed(seed, "s"),
    )
    rng = spawn_rng(derive_seed(seed, "g"))
    graphs = [
        random_task_graph(cluster_size, seed=rng)
        for _ in range(max(10, repetitions // 4))
    ]
    mapping = mapping_comparison(ctx, strategies, graphs, seed=derive_seed(seed, "m"))

    rpca = next(s for s in strategies if isinstance(s, RPCAStrategy))
    return Fig13Result(
        broadcast=bcast, scatter=scat, mapping=mapping, norm_ne=rpca.norm_ne
    )
