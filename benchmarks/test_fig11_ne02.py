"""Fig 11 — detailed study at Norm(N_E) = 0.2.

Paper shape: more dynamic than real EC2; RPCA still outperforms — 20-28%
over Baseline, 12-20% over Heuristics — but less than at 0.1, and the
broadcast CDF preserves the arm ordering.
"""

import numpy as np

from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.experiments import fig11_ne02
from repro.experiments.report import format_table


def test_fig11_detailed_ne02(benchmark, emit):
    trace = generate_trace(TraceConfig(n_machines=32, n_snapshots=30), seed=13)

    result = benchmark.pedantic(
        fig11_ne02.run,
        args=(trace,),
        kwargs=dict(target_norm_ne=0.2, repetitions=100, solver="apg", seed=0),
        rounds=1,
        iterations=1,
    )

    cmp = result.comparison
    emit(
        format_table(
            ["strategy", "broadcast", "scatter", "topo-mapping"],
            cmp.normalized_table(),
            title=(
                f"Fig 11a: normalized means at Norm(N_E) = "
                f"{result.achieved_norm_ne:.3f}, 32 VMs, 100 reps"
            ),
        )
    )
    cdf_rows = []
    for name in cmp.broadcast.times:
        v, _ = cmp.broadcast_cdf(name)
        cdf_rows.append((name, *np.percentile(v, [25, 50, 75]).round(4)))
    emit(format_table(["strategy", "p25", "p50", "p75"], cdf_rows,
                      title="Fig 11b: broadcast CDF quartiles (s)"))

    assert abs(result.achieved_norm_ne - 0.2) < 0.03
    # RPCA still beats Baseline on every application at this noise level.
    for res in (cmp.broadcast, cmp.scatter, cmp.mapping):
        assert res.improvement("RPCA", "Baseline") > 0.0
    assert cmp.broadcast.improvement("RPCA", "Baseline") > 0.10
