"""Unit tests for the multi-process-per-machine expansion."""

import numpy as np
import pytest

from repro.collectives.exec_model import broadcast_time, weights_to_alphabeta
from repro.collectives.fnf import fnf_tree
from repro.collectives.multiprocess import expand_to_processes, process_hosts
from repro.errors import ValidationError


def machine_weights(n=3, seed=0):
    rng = np.random.default_rng(seed)
    w = rng.uniform(1.0, 3.0, size=(n, n))
    np.fill_diagonal(w, 0.0)
    return w


class TestProcessHosts:
    def test_layout(self):
        np.testing.assert_array_equal(process_hosts([2, 1, 3]), [0, 0, 1, 2, 2, 2])

    def test_zero_count_machine_skipped(self):
        np.testing.assert_array_equal(process_hosts([1, 0, 2]), [0, 2, 2])

    def test_validation(self):
        with pytest.raises(ValidationError):
            process_hosts([])
        with pytest.raises(ValidationError):
            process_hosts([0, 0])
        with pytest.raises(ValidationError):
            process_hosts([-1, 2])


class TestExpandToProcesses:
    def test_shapes(self):
        pw, hosts = expand_to_processes(machine_weights(), [2, 1, 1])
        assert pw.shape == (4, 4)
        np.testing.assert_array_equal(hosts, [0, 0, 1, 2])

    def test_cross_machine_weights_inherited(self):
        w = machine_weights()
        pw, hosts = expand_to_processes(w, [2, 1, 1])
        # Processes 0 (m0) and 2 (m1) use the m0→m1 weight.
        assert pw[0, 2] == w[0, 1]
        assert pw[3, 1] == w[2, 0]

    def test_intra_machine_nearly_free(self):
        w = machine_weights()
        pw, _ = expand_to_processes(w, [3, 1, 1])
        off = ~np.eye(3, dtype=bool)
        assert 0 < pw[0, 1] < w[off].min() / 100

    def test_diagonal_zero(self):
        pw, _ = expand_to_processes(machine_weights(), [2, 2, 2])
        assert np.all(np.diagonal(pw) == 0.0)

    def test_length_validated(self):
        with pytest.raises(ValidationError):
            expand_to_processes(machine_weights(3), [1, 2])

    def test_fnf_prefers_local_processes_first(self):
        # With 2 processes on the root's machine, FNF's first pick is the
        # root's co-located process (near-free link).
        w = machine_weights(4, seed=1)
        pw, hosts = expand_to_processes(w, [2, 1, 1, 1])
        tree = fnf_tree(pw, 0)
        first = tree.children[0][0]
        assert hosts[first] == hosts[0]

    def test_multiprocess_broadcast_prices(self):
        w = machine_weights(4, seed=2)
        pw, _ = expand_to_processes(w, [2, 2, 2, 2])
        tree = fnf_tree(pw, 0)
        a, b = weights_to_alphabeta(pw, 1.0)
        t = broadcast_time(tree, a, b, 1.0)
        assert t > 0
        # With co-located fan-out, 8 processes over 4 machines should not
        # cost much more than the 4-machine broadcast.
        mt = fnf_tree(w, 0)
        ma, mb = weights_to_alphabeta(w, 1.0)
        t_machines = broadcast_time(mt, ma, mb, 1.0)
        assert t <= t_machines * 2.0
