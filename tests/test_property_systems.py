"""Property-based tests for trees, fair sharing, schedules and mappings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration.schedule import pairing_rounds
from repro.collectives.exec_model import broadcast_time, reduce_time, scatter_time
from repro.collectives.fnf import fnf_tree
from repro.collectives.trees import binomial_tree
from repro.mapping.greedy import greedy_mapping
from repro.mapping.taskgraph import random_task_graph
from repro.netsim.fairshare import build_incidence, max_min_fair_rates


def rand_weights(n, seed):
    rng = np.random.default_rng(seed)
    w = rng.uniform(0.5, 5.0, size=(n, n))
    np.fill_diagonal(w, 0.0)
    return w


def uniform_net(n, beta=1.0):
    a = np.zeros((n, n))
    b = np.full((n, n), beta)
    np.fill_diagonal(b, np.inf)
    return a, b


class TestTreeProperties:
    @given(st.integers(1, 40), st.integers(0, 1000), st.integers(0, 39))
    @settings(max_examples=80)
    def test_fnf_always_spanning(self, n, seed, root_raw):
        root = root_raw % n
        t = fnf_tree(rand_weights(n, seed), root)
        assert int(t.subtree_sizes()[root]) == n
        assert t.parent[root] == -1

    @given(st.integers(1, 64), st.integers(0, 63))
    @settings(max_examples=60)
    def test_binomial_always_spanning(self, n, root_raw):
        root = root_raw % n
        t = binomial_tree(n, root)
        assert int(t.subtree_sizes()[root]) == n

    @given(st.integers(2, 20), st.integers(0, 100))
    @settings(max_examples=50)
    def test_binomial_depth_is_floor_log2(self, n, root_raw):
        # The tree's edge-depth is ⌊log2 n⌋; the *round count* of the
        # schedule is ⌈log2 n⌉ (the root sends sequentially).
        root = root_raw % n
        t = binomial_tree(n, root)
        assert t.depth() == int(np.floor(np.log2(n)))

    @given(st.integers(2, 32), st.floats(0.1, 10.0))
    @settings(max_examples=50)
    def test_fnf_equals_binomial_on_uniform_weights(self, n, w_val):
        # On a homogeneous network FNF degenerates to the same doubling
        # schedule as the binomial tree: identical completion time. (On
        # heterogeneous matrices FNF is greedy, not optimal — it *usually*
        # wins, asserted statistically in the experiment tests, but single
        # adversarial matrices where it loses exist.)
        w = np.full((n, n), float(w_val))
        np.fill_diagonal(w, 0.0)
        from repro.collectives.exec_model import weights_to_alphabeta

        a, b = weights_to_alphabeta(w, 1.0)
        t_fnf = fnf_tree(w, 0)
        t_bin = binomial_tree(n, 0)
        assert broadcast_time(t_fnf, a, b, 1.0) == pytest.approx(
            broadcast_time(t_bin, a, b, 1.0)
        )

    @given(st.integers(2, 24), st.floats(0.5, 8.0), st.floats(0.1, 4.0))
    @settings(max_examples=50)
    def test_broadcast_monotone_in_message_size(self, n, beta, nbytes):
        t = binomial_tree(n, 0)
        a, b = uniform_net(n, beta=beta)
        assert broadcast_time(t, a, b, nbytes) <= broadcast_time(t, a, b, nbytes * 2)

    @given(st.integers(2, 24), st.integers(0, 100))
    @settings(max_examples=50)
    def test_collectives_positive(self, n, seed):
        w = rand_weights(n, seed)
        from repro.collectives.exec_model import weights_to_alphabeta

        a, b = weights_to_alphabeta(w, 2.0)
        t = fnf_tree(w, 0)
        assert broadcast_time(t, a, b, 2.0) > 0
        assert scatter_time(t, a, b, 2.0) > 0
        assert reduce_time(t, a, b, 2.0) > 0


class TestScheduleProperties:
    @given(st.integers(2, 40))
    @settings(max_examples=40)
    def test_every_ordered_pair_once(self, n):
        sched = pairing_rounds(n)
        seen = [p for rnd in sched.rounds for p in rnd]
        assert len(seen) == len(set(seen)) == n * (n - 1)

    @given(st.integers(2, 40))
    @settings(max_examples=40)
    def test_round_bound_is_2n(self, n):
        assert pairing_rounds(n).n_rounds <= 2 * n


class TestFairShareProperties:
    @given(st.integers(1, 20), st.integers(2, 10), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_feasible_and_positive(self, n_flows, n_links, seed):
        rng = np.random.default_rng(seed)
        paths = [
            tuple(rng.choice(n_links, size=min(3, n_links), replace=False))
            for _ in range(n_flows)
        ]
        caps = rng.uniform(0.5, 10.0, size=n_links)
        inc = build_incidence(paths, n_links)
        rates = max_min_fair_rates(inc, caps)
        assert np.all(rates > 0)
        load = inc.T.astype(float) @ rates
        assert np.all(load <= caps * (1 + 1e-6))

    @given(st.integers(1, 12), st.integers(0, 500))
    @settings(max_examples=40)
    def test_single_link_equal_split(self, n_flows, seed):
        rng = np.random.default_rng(seed)
        cap = float(rng.uniform(1, 10))
        inc = build_incidence([(0,)] * n_flows, 1)
        rates = max_min_fair_rates(inc, np.array([cap]))
        np.testing.assert_allclose(rates, cap / n_flows)

    @given(st.integers(1, 12), st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_rate_bounded_by_path_capacity(self, n_flows, seed):
        # (Max-min fairness is famously non-monotone under flow addition, so
        # the invariants worth holding are per-flow capacity bounds.)
        rng = np.random.default_rng(seed)
        n_links = 6
        paths = [
            tuple(rng.choice(n_links, size=2, replace=False)) for _ in range(n_flows)
        ]
        caps = rng.uniform(1, 5, size=n_links)
        rates = max_min_fair_rates(build_incidence(paths, n_links), caps)
        for path, r in zip(paths, rates):
            assert r <= min(caps[l] for l in path) + 1e-9


class TestMappingProperties:
    @given(st.integers(2, 12), st.integers(0, 500))
    @settings(max_examples=40)
    def test_greedy_always_injective(self, n, seed):
        g = random_task_graph(n, seed=seed)
        rng = np.random.default_rng(seed + 1)
        bw = rng.uniform(0.5, 5.0, size=(n + 2, n + 2))
        m = greedy_mapping(g, bw)
        assert len(set(m.tolist())) == n
        assert m.min() >= 0 and m.max() < n + 2
