"""Ablation — RPCA vs plain PCA, and the error-model boundary (Sec II-B).

Two corruption regimes probe the robustness claims:

* **Sparse gross errors** (random cells blown up — interference bursts):
  RPCA's exact regime. PCA's constant row drifts badly; RPCA holds.
* **Snapshot storms** (whole calibration rows scaled — a congestion episode
  during one measurement round): a scaled copy of the constant row is
  itself *low-rank*, so RPCA's sparse term cannot absorb it and the default
  mean extraction drifts exactly like PCA. The column-median extraction
  (``extraction="median"``, or the ``row_constant`` solver) is robust —
  a boundary of the paper's model worth knowing about.
"""

import numpy as np

from repro.core.decompose import decompose
from repro.core.matrices import TPMatrix
from repro.experiments.report import format_table

N, ROWS = 16, 10


def make_base(seed=0):
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.5, 2.0, size=(N, N))
    np.fill_diagonal(base, 0.0)
    flat = base.ravel()
    data = np.tile(flat, (ROWS, 1))
    data += 0.02 * rng.standard_normal(data.shape) * (flat > 0)
    return rng, np.abs(data), flat


def sparse_corrupted(fraction, seed=0):
    rng, data, flat = make_base(seed)
    hit = (rng.random(data.shape) < fraction) & (flat > 0)
    data = np.where(hit, data * rng.uniform(4, 10, size=data.shape), data)
    return TPMatrix(data=data, n_machines=N), flat


def storm_corrupted(n_storms, seed=0):
    rng, data, flat = make_base(seed)
    for k in rng.choice(ROWS, size=n_storms, replace=False):
        data[k] = flat * rng.uniform(5.0, 10.0)
    return TPMatrix(data=data, n_machines=N), flat


def err(tp, truth, solver, extraction="mean"):
    row = decompose(tp, solver=solver, extraction=extraction).constant.row
    off = truth > 0
    return float(np.median(np.abs(row[off] - truth[off]) / truth[off]))


def run_sweeps():
    sparse = []
    for frac in (0.0, 0.05, 0.15, 0.30):
        tp, truth = sparse_corrupted(frac)
        sparse.append(
            (frac, err(tp, truth, "pca"), err(tp, truth, "apg"),
             err(tp, truth, "row_constant"))
        )
    storms = []
    for k in (0, 1, 2, 3):
        tp, truth = storm_corrupted(k)
        storms.append(
            (k, err(tp, truth, "pca"), err(tp, truth, "apg", "mean"),
             err(tp, truth, "apg", "median"))
        )
    return sparse, storms


def test_ablation_pca_vs_rpca(benchmark, emit):
    sparse, storms = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)

    emit(
        format_table(
            ["corrupted cell fraction", "PCA", "RPCA-APG", "row-median"],
            sparse,
            title="Ablation A: sparse gross errors (RPCA's regime)",
        )
    )
    emit(
        format_table(
            ["storm snapshots (of 10)", "PCA", "APG + mean extraction",
             "APG + median extraction"],
            storms,
            title="Ablation B: whole-snapshot storms (low-rank corruption)",
        )
    )

    # Regime A: PCA drifts with sparse corruption, RPCA does not.
    assert sparse[0][1] < 0.05  # all clean → all accurate
    assert sparse[2][1] > 0.3  # PCA badly off at 15% corruption
    assert sparse[2][2] < 0.05 and sparse[2][3] < 0.05  # robust methods hold
    # Regime B: mean extraction inherits the storms; median extraction holds.
    assert storms[3][2] > 0.5
    assert storms[3][3] < 0.05
