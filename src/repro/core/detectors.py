"""Pluggable regime-shift detection over the session's residual signal.

The maintenance loop's recalibration guard is a *detector*: an online
classifier that consumes one ``Norm(N_E)``-style residual per operation (the
relative L1 distance between the live snapshot and the constant component in
service, see
:meth:`~repro.core.engine.DecompositionEngine.snapshot_residual`) and emits
a :class:`RegimeVerdict`. PR 3 hardcoded one such detector — the winsorized
CUSUM. This module extracts the contract into the :class:`RegimeDetector`
protocol, keeps :class:`CusumRegimeDetector` as the default implementation,
and adds drop-in alternatives from the IaaS change-detection literature
(Fattah & Bouguettaya's signature-based / noise-aware line; see
``docs/regime_detection.md`` for the catalog and tuning guide):

* ``"cusum"`` — :class:`CusumRegimeDetector`, tuned for abrupt sustained
  level shifts.
* ``"signature"`` — :class:`SignatureRegimeDetector`, windowed
  performance-signature distance against the baseline signature learned
  during warmup (level *and* dispersion move the distance).
* ``"noise-robust"`` — :class:`NoiseRobustRegimeDetector`, median/MAD rank
  statistics so bursty heavy-tailed noise cannot masquerade as a shift.
* ``"drift"`` — :class:`DriftRegimeDetector`, an anchored mean-elevation
  test with a difference-based noise scale, built for the slow ramps
  CUSUM's spike/shift dichotomy misses.

Detectors register under a name (:func:`register_detector`) and sessions,
fleet configs and the CLI build them through :func:`build_detector`, so
detector choice is a validated configuration value — not an import. Every
detector's mutable state round-trips losslessly through
``state_dict``/``restore_state`` (JSON-safe), which is what keeps
SIGKILL-resume and fleet worker migration bit-identical.
"""

from __future__ import annotations

import math
import statistics
from collections import deque
from dataclasses import asdict, dataclass
from enum import Enum
from typing import Any, ClassVar, Protocol, runtime_checkable

from .._validation import check_nonnegative, check_positive
from ..errors import ValidationError

__all__ = [
    "DEFAULT_DETECTOR",
    "RegimeVerdict",
    "RegimeDetector",
    "RegimeConfig",
    "CusumRegimeDetector",
    "SignatureConfig",
    "SignatureRegimeDetector",
    "NoiseRobustConfig",
    "NoiseRobustRegimeDetector",
    "DriftConfig",
    "DriftRegimeDetector",
    "register_detector",
    "detector_names",
    "detector_spec",
    "build_detector",
    "validate_regime_detector",
    "parse_detector_params",
]

#: The detector a bare ``regime=True`` (and the deprecated bare CLI flag)
#: resolves to — the historical CUSUM path, bit-for-bit.
DEFAULT_DETECTOR = "cusum"


class RegimeVerdict(Enum):
    """How the regime detector classifies one residual observation.

    Algorithm 1 treats every above-threshold deviation identically; the
    signature/change-point literature (Fattah et al.; Duplyakin et al.)
    distinguishes *transient spikes* — interference RPCA's sparse term is
    built to absorb, where the right move is to keep serving ``P_D`` — from
    *regime shifts*, where the constant component itself has moved and only
    a full cold re-calibration helps.
    """

    STABLE = "stable"  # residual consistent with the learned baseline
    SPIKE = "spike"  # one-off excursion; keep serving P_D
    SHIFT = "shift"  # sustained level change; re-calibrate cold


@runtime_checkable
class RegimeDetector(Protocol):
    """The contract every registered regime detector satisfies.

    One residual in, one :class:`RegimeVerdict` out, with lossless
    JSON-safe state capture — the session, the checkpoint layer and the
    fleet capsule protocol all program against exactly this surface.
    """

    name: ClassVar[str]
    shifts: int
    spikes: int

    @property
    def warmed_up(self) -> bool: ...

    def observe(self, value: float) -> RegimeVerdict: ...

    def reset(self) -> None: ...

    def params(self) -> dict[str, Any]: ...

    def state_dict(self) -> dict[str, Any]: ...

    def restore_state(self, state: dict[str, Any]) -> None: ...


def _check_finite(value: float) -> float:
    x = float(value)
    if not math.isfinite(x):
        raise ValueError(f"residual observation must be finite, got {value!r}")
    return x


@dataclass(frozen=True)
class RegimeConfig:
    """Tunables of the CUSUM regime-shift detector.

    The detector standardizes each residual-norm observation against a
    baseline learned during *warmup* and accumulates a one-sided CUSUM
    statistic ``S ← max(0, S + min(z, spike_z) − drift)``. ``S ≥ decision``
    signals a regime shift; an instantaneous ``z ≥ spike_z`` that does not
    push ``S`` over the line is a transient spike. The winsorization (``z``
    clipped at ``spike_z`` before accumulating) is what makes the two
    distinguishable: one interference spike — however violent — contributes
    at most ``spike_z − drift`` to ``S``, so only *sustained* elevation
    across ``≈ decision / (spike_z − drift)`` consecutive operations can
    reach the decision interval.

    Attributes
    ----------
    drift:
        CUSUM slack per observation, in baseline standard deviations; the
        allowance subtracted before accumulating (larger = less sensitive
        to slow drift).
    decision:
        CUSUM decision interval ``h``, in baseline standard deviations.
    warmup:
        Observations used to learn the baseline mean and deviation before
        any classification happens (everything is ``STABLE`` during warmup).
    spike_z:
        Standardized residual that counts as a transient spike; also the
        winsorization cap on each observation's CUSUM contribution.
    min_rel_sigma:
        Floor on the baseline standard deviation as a fraction of the
        baseline mean — calm traces have near-zero residual variance, and
        an unfloored σ would turn measurement noise into shifts.
    """

    drift: float = 0.5
    decision: float = 8.0
    warmup: int = 6
    spike_z: float = 4.0
    min_rel_sigma: float = 0.1

    def __post_init__(self) -> None:
        check_nonnegative(self.drift, "drift")
        check_positive(self.decision, "decision")
        if int(self.warmup) < 2:
            raise ValueError("warmup must be >= 2 observations")
        check_positive(self.spike_z, "spike_z")
        check_positive(self.min_rel_sigma, "min_rel_sigma")
        if float(self.decision) <= float(self.spike_z) - float(self.drift):
            raise ValueError(
                "decision must exceed spike_z - drift, or a single "
                "winsorized spike could masquerade as a regime shift"
            )


class CusumRegimeDetector:
    """Online change-point detector over per-snapshot residual norms.

    Feed it one ``Norm(N_E)``-style residual per operation (the relative L1
    distance between the live snapshot and the constant component in
    service, see
    :meth:`~repro.core.engine.DecompositionEngine.snapshot_residual`) and it
    returns a :class:`RegimeVerdict`. A permanent band change keeps the
    residual elevated against a stale ``P_D``, so the CUSUM statistic ramps
    to the decision interval within a few operations; an equal-magnitude
    one-snapshot spike contributes once and decays.

    After signalling ``SHIFT`` the detector resets itself entirely — the
    caller re-calibrates cold, the residual level changes meaning, and a
    fresh baseline must be learned for the new regime.
    """

    name: ClassVar[str] = "cusum"

    def __init__(self, config: RegimeConfig | None = None) -> None:
        self.config = config if config is not None else RegimeConfig()
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._cusum = 0.0
        self.shifts = 0
        self.spikes = 0

    @property
    def warmed_up(self) -> bool:
        return self._count >= int(self.config.warmup)

    @property
    def cusum(self) -> float:
        """Current value of the one-sided CUSUM statistic (σ units)."""
        return self._cusum

    def _sigma(self) -> float:
        var = self._m2 / (self._count - 1) if self._count > 1 else 0.0
        sigma = math.sqrt(max(var, 0.0))
        floor = self.config.min_rel_sigma * abs(self._mean)
        return max(sigma, floor, 1e-12)

    def observe(self, value: float) -> RegimeVerdict:
        """Classify one residual observation."""
        x = _check_finite(value)
        if not self.warmed_up:
            # Welford accumulation of the baseline.
            self._count += 1
            delta = x - self._mean
            self._mean += delta / self._count
            self._m2 += delta * (x - self._mean)
            return RegimeVerdict.STABLE
        z = (x - self._mean) / self._sigma()
        # Winsorized accumulation: a lone outlier contributes at most
        # spike_z - drift, so it cannot reach the decision interval alone.
        self._cusum = max(
            0.0, self._cusum + min(z, self.config.spike_z) - self.config.drift
        )
        if self._cusum >= self.config.decision:
            self.shifts += 1
            self.reset()
            return RegimeVerdict.SHIFT
        if z >= self.config.spike_z:
            self.spikes += 1
            return RegimeVerdict.SPIKE
        return RegimeVerdict.STABLE

    def reset(self) -> None:
        """Forget baseline and CUSUM state; the next observations re-warm.

        Called internally after a shift; callers should also reset after any
        cold re-calibration they initiate themselves, since the residuals'
        reference level changes with the constant component.
        """
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._cusum = 0.0

    def params(self) -> dict[str, Any]:
        """The constructor parameters, JSON-safe (for checkpoints/capsules)."""
        return asdict(self.config)

    # -- persistence -------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the detector's mutable state."""
        return {
            "count": self._count,
            "mean": self._mean,
            "m2": self._m2,
            "cusum": self._cusum,
            "shifts": self.shifts,
            "spikes": self.spikes,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Inverse of :meth:`state_dict` (config comes from ``__init__``)."""
        self._count = int(state["count"])
        self._mean = float(state["mean"])
        self._m2 = float(state["m2"])
        self._cusum = float(state["cusum"])
        self.shifts = int(state["shifts"])
        self.spikes = int(state["spikes"])


@dataclass(frozen=True)
class SignatureConfig:
    """Tunables of the signature-distance regime detector.

    Attributes
    ----------
    window:
        Sliding-window length over which the current performance signature
        (mean and dispersion of the standardized residuals) is formed.
    shift_distance:
        Euclidean distance between the windowed signature and the learned
        baseline signature — in baseline standard deviations — that counts
        as a regime shift (the window must be full).
    warmup:
        Observations used to learn the baseline signature before any
        classification happens.
    spike_z:
        Standardized residual that counts as a transient spike; window
        contributions are winsorized at this level, so one spike moves the
        signature distance by at most ``spike_z / window``.
    min_rel_sigma:
        Floor on the baseline standard deviation as a fraction of the
        baseline mean (calm traces have near-zero residual variance).
    """

    window: int = 4
    shift_distance: float = 3.0
    warmup: int = 6
    spike_z: float = 4.0
    min_rel_sigma: float = 0.1

    def __post_init__(self) -> None:
        if int(self.window) < 2:
            raise ValueError("window must be >= 2 observations")
        if int(self.warmup) < 2:
            raise ValueError("warmup must be >= 2 observations")
        check_positive(self.shift_distance, "shift_distance")
        check_positive(self.spike_z, "spike_z")
        check_positive(self.min_rel_sigma, "min_rel_sigma")
        if float(self.shift_distance) <= float(self.spike_z) / int(self.window):
            raise ValueError(
                "shift_distance must exceed spike_z / window, or a single "
                "winsorized spike could masquerade as a regime shift"
            )


class SignatureRegimeDetector:
    """Windowed performance-signature distance against a learned baseline.

    Fattah & Bouguettaya-style signature detection: warmup learns the
    baseline signature of the residual stream (its mean and standard
    deviation); afterwards a sliding window of winsorized standardized
    residuals forms the *current* signature, and the Euclidean distance
    between the two signatures — elevation of the window mean plus change
    in its dispersion, both in baseline σ units — is the change statistic.
    A sustained level shift moves the mean coordinate; an unstable regime
    that widens the residual distribution without moving its center moves
    the dispersion coordinate; either drives the distance over
    ``shift_distance``. One transient spike, clipped at ``spike_z``, moves
    the window mean by at most ``spike_z / window`` and decays out of the
    window after ``window`` operations.
    """

    name: ClassVar[str] = "signature"

    def __init__(self, config: SignatureConfig | None = None) -> None:
        self.config = config if config is not None else SignatureConfig()
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._window: deque[float] = deque(maxlen=int(self.config.window))
        self.shifts = 0
        self.spikes = 0

    @property
    def warmed_up(self) -> bool:
        return self._count >= int(self.config.warmup)

    def _sigma(self) -> float:
        var = self._m2 / (self._count - 1) if self._count > 1 else 0.0
        sigma = math.sqrt(max(var, 0.0))
        floor = self.config.min_rel_sigma * abs(self._mean)
        return max(sigma, floor, 1e-12)

    @property
    def distance(self) -> float:
        """Current signature distance (0.0 until the window fills)."""
        if len(self._window) < int(self.config.window):
            return 0.0
        mean_w = statistics.fmean(self._window)
        # Baseline dispersion is 1 by construction (z-scores); the current
        # window's dispersion contributes its deviation from that.
        spread_w = statistics.pstdev(self._window)
        return math.hypot(mean_w, spread_w - 1.0)

    def observe(self, value: float) -> RegimeVerdict:
        """Classify one residual observation."""
        x = _check_finite(value)
        if not self.warmed_up:
            self._count += 1
            delta = x - self._mean
            self._mean += delta / self._count
            self._m2 += delta * (x - self._mean)
            return RegimeVerdict.STABLE
        z = (x - self._mean) / self._sigma()
        self._window.append(min(z, self.config.spike_z))
        if self.distance >= self.config.shift_distance:
            self.shifts += 1
            self.reset()
            return RegimeVerdict.SHIFT
        if z >= self.config.spike_z:
            self.spikes += 1
            return RegimeVerdict.SPIKE
        return RegimeVerdict.STABLE

    def reset(self) -> None:
        """Forget baseline signature and window; the next observations re-warm."""
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._window.clear()

    def params(self) -> dict[str, Any]:
        """The constructor parameters, JSON-safe (for checkpoints/capsules)."""
        return asdict(self.config)

    # -- persistence -------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the detector's mutable state."""
        return {
            "count": self._count,
            "mean": self._mean,
            "m2": self._m2,
            "window": list(self._window),
            "shifts": self.shifts,
            "spikes": self.spikes,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Inverse of :meth:`state_dict` (config comes from ``__init__``)."""
        self._count = int(state["count"])
        self._mean = float(state["mean"])
        self._m2 = float(state["m2"])
        self._window = deque(
            (float(v) for v in state["window"]), maxlen=int(self.config.window)
        )
        self.shifts = int(state["shifts"])
        self.spikes = int(state["spikes"])


@dataclass(frozen=True)
class NoiseRobustConfig:
    """Tunables of the median/MAD noise-robust regime detector.

    Attributes
    ----------
    window:
        Sliding-window length whose *median* is the change statistic. A
        shift must elevate the majority of the window to fire, so up to
        ``(window - 1) // 2`` arbitrarily violent outliers per window are
        ignored outright.
    shift_score:
        Robust z-score of the window median (against the baseline median,
        in MAD-derived σ units) that counts as a regime shift.
    warmup:
        Observations collected to learn the baseline median and MAD before
        any classification happens.
    spike_z:
        Robust z-score of an individual observation that counts as a
        transient spike.
    min_rel_scale:
        Floor on the MAD-derived scale as a fraction of the baseline
        median (calm traces have near-zero residual dispersion).
    """

    window: int = 5
    shift_score: float = 4.0
    warmup: int = 8
    spike_z: float = 6.0
    min_rel_scale: float = 0.1

    def __post_init__(self) -> None:
        if int(self.window) < 3:
            raise ValueError("window must be >= 3 observations")
        if int(self.warmup) < 3:
            raise ValueError("warmup must be >= 3 observations")
        check_positive(self.shift_score, "shift_score")
        check_positive(self.spike_z, "spike_z")
        check_positive(self.min_rel_scale, "min_rel_scale")


# MAD -> σ for a normal distribution; the standard consistency constant.
_MAD_TO_SIGMA = 1.4826


class NoiseRobustRegimeDetector:
    """Rank-statistic change detection for heavy-tailed residual streams.

    The noise-aware formulation of the Fattah & Bouguettaya line: both the
    baseline (median + MAD over the warmup sample) and the change statistic
    (median of a sliding window) are order statistics, so bursty
    heavy-tailed noise — the regime where mean/variance detectors false-fire
    — has bounded influence. A minority of window entries can be arbitrarily
    large without moving the window median at all; only a *majority*
    elevation (a genuine level change) drives the robust score over
    ``shift_score``. The price is latency on true shifts: the window must be
    half-full of post-shift residuals before the median moves.
    """

    name: ClassVar[str] = "noise-robust"

    def __init__(self, config: NoiseRobustConfig | None = None) -> None:
        self.config = config if config is not None else NoiseRobustConfig()
        self._baseline: list[float] = []
        self._median = 0.0
        self._scale = 1e-12
        self._window: deque[float] = deque(maxlen=int(self.config.window))
        self.shifts = 0
        self.spikes = 0

    @property
    def warmed_up(self) -> bool:
        return len(self._baseline) >= int(self.config.warmup)

    def _finalize_baseline(self) -> None:
        self._median = float(statistics.median(self._baseline))
        mad = float(
            statistics.median(abs(v - self._median) for v in self._baseline)
        )
        floor = self.config.min_rel_scale * abs(self._median)
        self._scale = max(_MAD_TO_SIGMA * mad, floor, 1e-12)

    @property
    def score(self) -> float:
        """Robust z-score of the window median (0.0 until the window fills)."""
        if len(self._window) < int(self.config.window):
            return 0.0
        return (float(statistics.median(self._window)) - self._median) / self._scale

    def observe(self, value: float) -> RegimeVerdict:
        """Classify one residual observation."""
        x = _check_finite(value)
        if not self.warmed_up:
            self._baseline.append(x)
            if self.warmed_up:
                self._finalize_baseline()
            return RegimeVerdict.STABLE
        self._window.append(x)
        if self.score >= self.config.shift_score:
            self.shifts += 1
            self.reset()
            return RegimeVerdict.SHIFT
        if (x - self._median) / self._scale >= self.config.spike_z:
            self.spikes += 1
            return RegimeVerdict.SPIKE
        return RegimeVerdict.STABLE

    def reset(self) -> None:
        """Forget baseline sample and window; the next observations re-warm."""
        self._baseline = []
        self._median = 0.0
        self._scale = 1e-12
        self._window.clear()

    def params(self) -> dict[str, Any]:
        """The constructor parameters, JSON-safe (for checkpoints/capsules)."""
        return asdict(self.config)

    # -- persistence -------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the detector's mutable state."""
        return {
            "baseline": list(self._baseline),
            "median": self._median,
            "scale": self._scale,
            "window": list(self._window),
            "shifts": self.shifts,
            "spikes": self.spikes,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Inverse of :meth:`state_dict` (config comes from ``__init__``)."""
        self._baseline = [float(v) for v in state["baseline"]]
        self._median = float(state["median"])
        self._scale = float(state["scale"])
        self._window = deque(
            (float(v) for v in state["window"]), maxlen=int(self.config.window)
        )
        self.shifts = int(state["shifts"])
        self.spikes = int(state["spikes"])


@dataclass(frozen=True)
class DriftConfig:
    """Tunables of the slow-ramp drift detector.

    Attributes
    ----------
    window:
        Sliding-window length whose mean elevation above the anchor is the
        change statistic.
    decision:
        Window-mean elevation (in noise σ units) that counts as a regime
        shift (the window must be full).
    warmup:
        Observations used to learn the anchor level and the
        difference-based noise scale before any classification happens.
    spike_z:
        Standardized residual that counts as a transient spike; window
        contributions are winsorized at this level, so one spike moves the
        window mean by at most ``spike_z / window``.
    min_rel_sigma:
        Floor on the noise scale as a fraction of the anchor level.
    """

    window: int = 4
    decision: float = 2.0
    warmup: int = 6
    spike_z: float = 4.0
    min_rel_sigma: float = 0.1

    def __post_init__(self) -> None:
        if int(self.window) < 2:
            raise ValueError("window must be >= 2 observations")
        if int(self.warmup) < 3:
            raise ValueError("warmup must be >= 3 observations")
        check_positive(self.decision, "decision")
        check_positive(self.spike_z, "spike_z")
        check_positive(self.min_rel_sigma, "min_rel_sigma")
        if float(self.decision) <= float(self.spike_z) / int(self.window):
            raise ValueError(
                "decision must exceed spike_z / window, or a single "
                "winsorized spike could masquerade as a regime shift"
            )


class DriftRegimeDetector:
    """Anchored elevation test for slow ramps CUSUM's slack swallows.

    Two design choices target gradual change specifically. First, the noise
    scale comes from *lag-1 differences* (``σ = stdev(x_t − x_{t−1}) / √2``)
    rather than from the raw warmup sample: a trend that is already under
    way during warmup inflates a Welford variance — deadening every
    z-score downstream — but barely moves successive differences, so the
    scale stays an estimate of the measurement noise alone. Second, there
    is no per-observation slack: where CUSUM subtracts ``drift`` σ from
    every increment (discarding slow elevation entirely until it outruns
    the slack), this detector compares the raw window mean against the
    anchor level learned at warmup, so arbitrarily slow monotone ramps
    accumulate undiminished and fire once the elevation crosses
    ``decision``. The price is spike sensitivity between those of CUSUM
    and the median detector: winsorization caps one outlier's contribution
    at ``spike_z / window``, but two spikes inside one window add up.
    """

    name: ClassVar[str] = "drift"

    def __init__(self, config: DriftConfig | None = None) -> None:
        self.config = config if config is not None else DriftConfig()
        self._count = 0
        self._anchor = 0.0
        self._last: float | None = None
        self._dcount = 0
        self._dmean = 0.0
        self._dm2 = 0.0
        self._window: deque[float] = deque(maxlen=int(self.config.window))
        self.shifts = 0
        self.spikes = 0

    @property
    def warmed_up(self) -> bool:
        return self._count >= int(self.config.warmup)

    def _sigma(self) -> float:
        dvar = self._dm2 / (self._dcount - 1) if self._dcount > 1 else 0.0
        # Var(x_t - x_{t-1}) = 2 Var(noise) for uncorrelated noise; a slow
        # trend adds only its per-step increment, not its total excursion.
        sigma = math.sqrt(max(dvar, 0.0) / 2.0)
        floor = self.config.min_rel_sigma * abs(self._anchor)
        return max(sigma, floor, 1e-12)

    def _track_difference(self, x: float) -> None:
        if self._last is not None:
            d = x - self._last
            self._dcount += 1
            delta = d - self._dmean
            self._dmean += delta / self._dcount
            self._dm2 += delta * (d - self._dmean)
        self._last = x

    @property
    def elevation(self) -> float:
        """Window-mean elevation over the anchor, in noise σ units."""
        if len(self._window) < int(self.config.window):
            return 0.0
        return statistics.fmean(self._window)

    def observe(self, value: float) -> RegimeVerdict:
        """Classify one residual observation."""
        x = _check_finite(value)
        if not self.warmed_up:
            self._count += 1
            self._anchor += (x - self._anchor) / self._count
            self._track_difference(x)
            return RegimeVerdict.STABLE
        z = (x - self._anchor) / self._sigma()
        if z < self.config.spike_z:
            self._track_difference(x)
        # else: an outlier must not inflate the very noise scale it is
        # judged against — it is excluded from difference tracking and
        # ``_last`` keeps pointing at the last in-band sample.
        self._window.append(min(z, self.config.spike_z))
        if self.elevation >= self.config.decision:
            self.shifts += 1
            self.reset()
            return RegimeVerdict.SHIFT
        if z >= self.config.spike_z:
            self.spikes += 1
            return RegimeVerdict.SPIKE
        return RegimeVerdict.STABLE

    def reset(self) -> None:
        """Forget anchor, noise scale and window; the next observations re-warm."""
        self._count = 0
        self._anchor = 0.0
        self._last = None
        self._dcount = 0
        self._dmean = 0.0
        self._dm2 = 0.0
        self._window.clear()

    def params(self) -> dict[str, Any]:
        """The constructor parameters, JSON-safe (for checkpoints/capsules)."""
        return asdict(self.config)

    # -- persistence -------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the detector's mutable state."""
        return {
            "count": self._count,
            "anchor": self._anchor,
            "last": self._last,
            "dcount": self._dcount,
            "dmean": self._dmean,
            "dm2": self._dm2,
            "window": list(self._window),
            "shifts": self.shifts,
            "spikes": self.spikes,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Inverse of :meth:`state_dict` (config comes from ``__init__``)."""
        self._count = int(state["count"])
        self._anchor = float(state["anchor"])
        self._last = None if state["last"] is None else float(state["last"])
        self._dcount = int(state["dcount"])
        self._dmean = float(state["dmean"])
        self._dm2 = float(state["dm2"])
        self._window = deque(
            (float(v) for v in state["window"]), maxlen=int(self.config.window)
        )
        self.shifts = int(state["shifts"])
        self.spikes = int(state["spikes"])


# -- registry ---------------------------------------------------------------
_REGISTRY: dict[str, tuple[type, type]] = {}


def register_detector(name: str, detector_cls: type, config_cls: type) -> None:
    """Register *detector_cls* (configured by *config_cls*) under *name*.

    Re-registering a name replaces the previous entry, so downstream code
    can override a stock detector with a tuned subclass.
    """
    if not isinstance(name, str) or not name:
        raise ValidationError("detector name must be a non-empty string")
    _REGISTRY[name] = (detector_cls, config_cls)


def detector_names() -> tuple[str, ...]:
    """Registered detector names, sorted."""
    return tuple(sorted(_REGISTRY))


def detector_spec(name: str) -> tuple[type, type]:
    """The ``(detector_cls, config_cls)`` pair registered under *name*."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown regime detector {name!r}; registered detectors: "
            f"{', '.join(detector_names())}"
        ) from None


def build_detector(
    name: str, params: dict[str, Any] | None = None
) -> RegimeDetector:
    """Build the detector registered under *name* with *params* overrides.

    *params* are keyword arguments for the detector's config dataclass
    (e.g. ``{"decision": 6.0, "warmup": 8}``); invalid names or values
    raise :class:`~repro.errors.ValidationError` naming the detector.
    """
    detector_cls, config_cls = detector_spec(name)
    try:
        config = config_cls(**dict(params or {}))
    except TypeError as exc:
        raise ValidationError(
            f"bad parameters for regime detector {name!r}: {exc}"
        ) from None
    except ValueError as exc:
        raise ValidationError(
            f"bad parameters for regime detector {name!r}: {exc}"
        ) from exc
    return detector_cls(config)


def validate_regime_detector(
    name: str | None, params: dict[str, Any] | None
) -> None:
    """Validate a ``(regime_detector, regime_params)`` config pair.

    The shared ``__post_init__`` check behind ``SessionConfig`` and
    ``FleetConfig``: ``None`` with no params is the detector-free default;
    otherwise the name must be registered and the params must build a valid
    config (the trial detector is discarded — sessions build their own).
    """
    if name is None:
        if params:
            raise ValidationError(
                "regime_params given without a regime_detector; "
                "pass regime_detector=<name> as well"
            )
        return
    build_detector(name, params)


def parse_detector_params(text: str | None) -> dict[str, float | int]:
    """Parse a ``key=value[,key=value...]`` CLI string into detector params.

    Values parse as ``int`` when written as integers, ``float`` otherwise —
    matching the numeric fields every stock detector config uses.
    """
    if not text:
        return {}
    params: dict[str, float | int] = {}
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        key, sep, raw = token.partition("=")
        key, raw = key.strip(), raw.strip()
        if not sep or not key or not raw:
            raise ValidationError(
                f"bad detector parameter {token!r}: expected key=value"
            )
        if key in params:
            raise ValidationError(f"duplicate detector parameter {key!r}")
        try:
            value: float | int = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                raise ValidationError(
                    f"bad detector parameter value {raw!r} for {key!r}: "
                    "expected a number"
                ) from None
        params[key] = value
    return params


register_detector("cusum", CusumRegimeDetector, RegimeConfig)
register_detector("signature", SignatureRegimeDetector, SignatureConfig)
register_detector("noise-robust", NoiseRobustRegimeDetector, NoiseRobustConfig)
register_detector("drift", DriftRegimeDetector, DriftConfig)
