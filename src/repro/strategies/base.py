"""Strategy interface shared by the four compared approaches.

A strategy is the thing that differs between the paper's comparison arms:
given calibration data (a TP-matrix) it produces — or declines to produce —
a link-weight estimate, and it names which tree/mapping algorithm should
consume that estimate. Experiment drivers treat strategies uniformly:

    strategy.fit(tp_prefix)
    w = strategy.weight_matrix()          # None for Baseline
    run_collective(..., algorithm=strategy.tree_algorithm, estimate_weights=w)
"""

from __future__ import annotations

import abc

import numpy as np

from ..core.matrices import TPMatrix

__all__ = ["Strategy"]


class Strategy(abc.ABC):
    """One comparison arm: an estimator plus its optimizer bindings."""

    #: Human-readable arm name ("Baseline", "Heuristics", "RPCA", ...).
    name: str = "abstract"
    #: Tree constructor the arm uses ("binomial" or "fnf").
    tree_algorithm: str = "binomial"
    #: Mapping algorithm the arm uses ("ring" or "greedy").
    mapping_algorithm: str = "ring"

    @abc.abstractmethod
    def fit(self, tp: TPMatrix) -> None:
        """Consume a calibration TP-matrix (may be a no-op)."""

    @abc.abstractmethod
    def weight_matrix(self) -> np.ndarray | None:
        """The link-weight estimate, or None if the arm is estimate-free."""

    @property
    def is_network_aware(self) -> bool:
        """True when the arm uses link weights to optimize."""
        return self.tree_algorithm != "binomial" or self.mapping_algorithm != "ring"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
