"""Baseline: run directly in the cloud with no network awareness.

MPI collectives use the MPICH2 binomial tree; topology mapping uses the ring
mapping (paper Sec V-A). The strategy ignores calibration data entirely.
"""

from __future__ import annotations

import numpy as np

from ..core.matrices import TPMatrix
from .base import Strategy

__all__ = ["BaselineStrategy"]


class BaselineStrategy(Strategy):
    """No estimates, binomial trees, ring mapping."""

    name = "Baseline"
    tree_algorithm = "binomial"
    mapping_algorithm = "ring"

    def fit(self, tp: TPMatrix) -> None:  # noqa: ARG002 - uniform interface
        return None

    def weight_matrix(self) -> np.ndarray | None:
        return None
