#!/usr/bin/env python3
"""Extensions: scientific workflows and monetary cost (paper Sec VI).

The paper's future work, built out: map a Montage-shaped workflow DAG onto a
virtual cluster with each strategy, then price a whole campaign of runs at
2013 EC2 hourly billing vs modern per-second billing.

Run:  python examples/workflow_economics.py
"""

from __future__ import annotations

import numpy as np

from repro import BaselineStrategy, HeuristicStrategy, RPCAStrategy, TraceConfig, generate_trace
from repro.apps.workflow import montage_like_workflow, workflow_makespan
from repro.calibration.overhead import calibration_overhead_seconds
from repro.economics.pricing import BillingGranularity, InstancePricing
from repro.economics.savings import savings_report
from repro.experiments.harness import ReplayContext
from repro.experiments.report import format_table
from repro.mapping.evaluate import bandwidth_from_weights
from repro.mapping.greedy import greedy_mapping
from repro.mapping.ring import ring_mapping

MB = 1024 * 1024


def main() -> None:
    n = 24
    trace = generate_trace(TraceConfig(n_machines=n, n_snapshots=30), seed=44)
    ctx = ReplayContext(trace=trace, time_step=10)
    arms = [
        BaselineStrategy(),
        HeuristicStrategy("mean"),
        RPCAStrategy("apg", time_step=10),
    ]
    ctx.fit(arms)

    wf = montage_like_workflow(
        width=10, tile_bytes=400 * MB, seed=2,
        project_seconds=2.0, overlap_seconds=1.0, combine_seconds=5.0,
    )
    g, order = wf.task_graph()
    print(f"workflow: {wf.n_stages} stages, {g.n_edges} data-flow edges, "
          f"{g.total_volume() / MB:.0f} MB moved per run\n")

    makespans: dict[str, list[float]] = {a.name: [] for a in arms}
    for rep in range(20):
        k = ctx.eval_snapshot(rep)
        for a in arms:
            if a.mapping_algorithm == "ring":
                assignment = ring_mapping(len(order), n, offset=rep)
            else:
                assignment = greedy_mapping(
                    g, bandwidth_from_weights(a.weight_matrix())
                )
            makespans[a.name].append(
                workflow_makespan(wf, assignment, trace.alpha[k], trace.beta[k])
            )
    means = {k: float(np.mean(v)) for k, v in makespans.items()}
    print(format_table(
        ["strategy", "mean makespan (s)", "normalized"],
        [(k, v, v / means["Baseline"]) for k, v in means.items()],
        title="Montage-like workflow on 24 VMs (20 replayed runs)",
    ))

    campaign = 50
    overhead = calibration_overhead_seconds(n, 10)
    print(f"\ncampaign: {campaign} runs; one calibration ({overhead:.0f}s) amortized")
    rows = []
    for granularity in (BillingGranularity.HOURLY, BillingGranularity.PER_SECOND):
        rep = savings_report(
            strategy="RPCA",
            baseline_elapsed_seconds=means["Baseline"] * campaign,
            strategy_elapsed_seconds=means["RPCA"] * campaign,
            strategy_overhead_seconds=overhead,
            n_instances=n,
            pricing=InstancePricing(granularity=granularity),
        )
        rows.append((granularity.value, rep.baseline_cost, rep.strategy_cost,
                     rep.savings, f"{rep.savings_fraction:.1%}",
                     "yes" if rep.pays_off else "no"))
    print(format_table(
        ["billing", "baseline $", "RPCA $", "saved $", "saved %", "pays off"],
        rows,
        title="Campaign cost at 2013 m1.medium pricing ($0.12/h x 24 instances)",
    ))
    print("\nhourly billing quantizes savings; per-second billing monetizes "
          "every shaved second — the economics the paper flagged as future work")


if __name__ == "__main__":
    main()
