"""High-level collective entry points: build a tree, price it live.

:func:`run_collective` is the funnel used by strategies and experiment
drivers: given an *estimate* weight matrix (whatever the strategy believes
about the network) it builds the tree, then prices that tree against the
*live* (α, β) snapshot — the measured reality of the moment. The gap between
the two is precisely what the paper's maintenance loop monitors.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from .._validation import as_square_matrix, check_index
from .exec_model import collective_time
from .fnf import fnf_tree
from .trees import CommTree, binomial_tree

__all__ = ["Collective", "build_tree", "run_collective", "CollectiveRun"]


class Collective(Enum):
    """The four basic collectives the paper studies (Sec II-C)."""

    BROADCAST = "broadcast"
    SCATTER = "scatter"
    REDUCE = "reduce"
    GATHER = "gather"


def build_tree(
    n: int,
    root: int,
    *,
    algorithm: str = "binomial",
    weights: np.ndarray | None = None,
) -> CommTree:
    """Construct a communication tree.

    Parameters
    ----------
    n:
        Number of participating machines.
    root:
        Root machine index.
    algorithm:
        ``"binomial"`` (MPICH order; ignores *weights*) or ``"fnf"``
        (requires *weights*).
    weights:
        Link-weight matrix for network-aware algorithms.
    """
    check_index(root, n, "root")
    if algorithm == "binomial":
        return binomial_tree(n, root)
    if algorithm == "fnf":
        if weights is None:
            raise ValueError("FNF requires a weight matrix")
        w = as_square_matrix(weights, "weights")
        if w.shape[0] != n:
            raise ValueError(f"weights size {w.shape[0]} != n {n}")
        return fnf_tree(w, root)
    raise ValueError(f"unknown tree algorithm {algorithm!r}")


@dataclass(frozen=True, slots=True)
class CollectiveRun:
    """Outcome of one collective execution.

    ``expected_time`` prices the tree under the matrix it was built from
    (None for estimate-free algorithms); ``elapsed_time`` prices it under
    the live snapshot.
    """

    op: Collective
    tree: CommTree
    elapsed_time: float
    expected_time: float | None


def run_collective(
    op: Collective | str,
    *,
    live_alpha: np.ndarray,
    live_beta: np.ndarray,
    nbytes: float,
    root: int = 0,
    algorithm: str = "binomial",
    estimate_weights: np.ndarray | None = None,
    estimate_alpha: np.ndarray | None = None,
    estimate_beta: np.ndarray | None = None,
) -> CollectiveRun:
    """Build a tree from the estimate and price it against the live network.

    Parameters
    ----------
    op:
        Which collective to run.
    live_alpha, live_beta:
        The measured network of the moment (the trace snapshot).
    nbytes:
        Message size (full message for broadcast/reduce; per-node block for
        scatter/gather).
    root:
        Root machine.
    algorithm:
        Tree constructor (see :func:`build_tree`).
    estimate_weights:
        The strategy's weight matrix (required for ``"fnf"``).
    estimate_alpha, estimate_beta:
        Optional α-β estimate used to compute ``expected_time`` exactly; when
        absent but *estimate_weights* is given, the expectation uses the
        weight matrix as a pure-bandwidth model.
    """
    op_e = Collective(op) if not isinstance(op, Collective) else op
    n = np.asarray(live_alpha).shape[0]
    tree = build_tree(n, root, algorithm=algorithm, weights=estimate_weights)
    elapsed = collective_time(op_e.value, tree, live_alpha, live_beta, nbytes)

    expected: float | None = None
    if estimate_alpha is not None and estimate_beta is not None:
        expected = collective_time(op_e.value, tree, estimate_alpha, estimate_beta, nbytes)
    elif estimate_weights is not None:
        from .exec_model import weights_to_alphabeta

        ea, eb = weights_to_alphabeta(estimate_weights, nbytes)
        expected = collective_time(op_e.value, tree, ea, eb, nbytes)
    return CollectiveRun(op=op_e, tree=tree, elapsed_time=elapsed, expected_time=expected)
