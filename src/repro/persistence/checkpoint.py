"""Versioned, checksummed checkpoints with atomic writes and fallback loading.

A checkpoint is one self-contained file holding a dict of numpy arrays plus a
JSON metadata dict (the session's scalars: cursor, counters, config, schema
version). On disk:

``RPCK`` magic + ``uint32`` format version + ``uint64`` payload length +
``uint32`` CRC32(payload) (little-endian), followed by the payload: the
JSON metadata block, then a flat directory of raw C-order numpy arrays
(name, dtype string, shape, bytes — all length-prefixed). The flat layout
is deliberate: checkpoints sit on the session's hot path, and a zip
container (``.npz``) costs more than the arrays themselves at this size.

Writes go through a temp file in the same directory followed by
``os.replace``, so a reader (including a recovery racing a dying writer)
only ever sees a complete old file or a complete new file. Any mismatch —
magic, version, length, checksum, unreadable archive — raises
:class:`~repro.errors.CheckpointCorruption`, which
:meth:`CheckpointStore.load_latest` treats as "try the next-older one".
"""

from __future__ import annotations

import json
import os
import re
import struct
import zlib
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import CheckpointCorruption, PersistenceError

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "write_checkpoint",
    "read_checkpoint",
    "CheckpointStore",
]

CHECKPOINT_MAGIC = b"RPCK"
CHECKPOINT_VERSION = 1

_HEADER = struct.Struct("<4sIQI")  # magic, version, payload length, crc32
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_NAME_RE = re.compile(r"^ckpt-(\d{8})\.ckpt$")


@dataclass(frozen=True)
class Checkpoint:
    """One loaded checkpoint: arrays + metadata + where it came from."""

    arrays: dict[str, np.ndarray]
    meta: dict[str, Any]
    path: str


def _encode_payload(arrays: dict[str, np.ndarray], meta: dict[str, Any]) -> bytes:
    meta_blob = json.dumps(meta, sort_keys=True).encode("utf-8")
    pieces = [_U32.pack(len(meta_blob)), meta_blob, _U32.pack(len(arrays))]
    for name, value in arrays.items():
        arr = np.ascontiguousarray(value)
        if arr.dtype.hasobject:
            raise PersistenceError(
                f"array {name!r} has an object dtype and cannot be checkpointed"
            )
        name_b = name.encode("utf-8")
        dtype_b = arr.dtype.str.encode("ascii")
        data = arr.tobytes()
        pieces += [
            _U32.pack(len(name_b)), name_b,
            _U32.pack(len(dtype_b)), dtype_b,
            _U32.pack(arr.ndim),
            *(_U64.pack(dim) for dim in arr.shape),
            _U64.pack(len(data)), data,
        ]
    return b"".join(pieces)


def _decode_payload(payload: bytes, path: str) -> tuple[dict[str, np.ndarray], dict]:
    def bad(why: str) -> CheckpointCorruption:
        return CheckpointCorruption(f"{path}: unreadable payload: {why}")

    try:
        offset = 0

        def take_u32() -> int:
            nonlocal offset
            (value,) = _U32.unpack_from(payload, offset)
            offset += _U32.size
            return value

        def take_u64() -> int:
            nonlocal offset
            (value,) = _U64.unpack_from(payload, offset)
            offset += _U64.size
            return value

        def take_bytes(length: int) -> bytes:
            nonlocal offset
            if offset + length > len(payload):
                raise bad("truncated block")
            block = payload[offset : offset + length]
            offset += length
            return block

        meta = json.loads(take_bytes(take_u32()).decode("utf-8"))
        arrays: dict[str, np.ndarray] = {}
        for _ in range(take_u32()):
            name = take_bytes(take_u32()).decode("utf-8")
            dtype = np.dtype(take_bytes(take_u32()).decode("ascii"))
            shape = tuple(take_u64() for _ in range(take_u32()))
            raw = take_bytes(take_u64())
            arrays[name] = np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
        if offset != len(payload):
            raise bad(f"{len(payload) - offset} trailing bytes")
    except CheckpointCorruption:
        raise
    except Exception as exc:  # struct/json/dtype/reshape failures
        raise bad(str(exc)) from exc
    return arrays, meta


def write_checkpoint(
    path: str | os.PathLike,
    arrays: dict[str, np.ndarray],
    meta: dict[str, Any],
    *,
    fsync: bool = False,
) -> None:
    """Atomically write a checkpoint file (temp file + rename)."""
    target = os.fspath(path)
    payload = _encode_payload(arrays, meta)
    header = _HEADER.pack(
        CHECKPOINT_MAGIC,
        CHECKPOINT_VERSION,
        len(payload),
        zlib.crc32(payload) & 0xFFFFFFFF,
    )
    directory = os.path.dirname(target) or "."
    # Fixed temp name rather than mkstemp: the store is single-writer by
    # design, and os.replace keeps the swap atomic either way.
    tmp = target + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(header)
            fh.write(payload)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)


def read_checkpoint(path: str | os.PathLike) -> Checkpoint:
    """Read and verify one checkpoint file.

    Raises
    ------
    CheckpointCorruption
        On any integrity failure: wrong magic, unsupported version,
        truncated payload, CRC mismatch, or an unreadable archive. A single
        flipped byte anywhere in the payload is caught by the CRC.
    """
    target = os.fspath(path)
    with open(target, "rb") as fh:
        blob = fh.read()
    if len(blob) < _HEADER.size:
        raise CheckpointCorruption(f"{target}: truncated header")
    magic, version, length, crc = _HEADER.unpack_from(blob, 0)
    if magic != CHECKPOINT_MAGIC:
        raise CheckpointCorruption(f"{target}: bad magic {magic!r}")
    if version != CHECKPOINT_VERSION:
        raise CheckpointCorruption(
            f"{target}: unsupported checkpoint version {version} "
            f"(expected {CHECKPOINT_VERSION})"
        )
    payload = blob[_HEADER.size :]
    if len(payload) != length:
        raise CheckpointCorruption(
            f"{target}: payload is {len(payload)} bytes, header says {length}"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise CheckpointCorruption(f"{target}: checksum mismatch")
    arrays, meta = _decode_payload(payload, target)
    return Checkpoint(arrays=arrays, meta=meta, path=target)


class CheckpointStore:
    """A directory of numbered checkpoints with retention and fallback.

    Files are named ``ckpt-<seq>.ckpt`` with a monotonically increasing
    sequence number; :meth:`save` prunes all but the newest *keep* files,
    and :meth:`load_latest` walks newest → oldest skipping anything that
    fails verification — the fallback path recovery relies on.
    """

    def __init__(
        self, directory: str | os.PathLike, *, keep: int = 3, fsync: bool = False
    ) -> None:
        if int(keep) < 1:
            raise PersistenceError("keep must be >= 1")
        self.directory = os.fspath(directory)
        self.keep = int(keep)
        self.fsync = bool(fsync)
        os.makedirs(self.directory, exist_ok=True)

    def _paths(self) -> list[tuple[int, str]]:
        """(seq, path) pairs of present checkpoint files, oldest first."""
        found = []
        for name in os.listdir(self.directory):
            m = _NAME_RE.match(name)
            if m:
                found.append((int(m.group(1)), os.path.join(self.directory, name)))
        return sorted(found)

    @property
    def next_seq(self) -> int:
        paths = self._paths()
        return paths[-1][0] + 1 if paths else 0

    def save(self, arrays: dict[str, np.ndarray], meta: dict[str, Any]) -> str:
        """Write the next checkpoint and prune beyond the retention limit."""
        seq = self.next_seq
        path = os.path.join(self.directory, f"ckpt-{seq:08d}.ckpt")
        write_checkpoint(path, arrays, meta, fsync=self.fsync)
        for _, old in self._paths()[: -self.keep]:
            try:
                os.unlink(old)
            except OSError:
                pass
        return path

    def load_latest(self) -> Checkpoint | None:
        """Newest checkpoint that passes verification; None if none does."""
        for _, path in reversed(self._paths()):
            try:
                return read_checkpoint(path)
            except (CheckpointCorruption, OSError):
                continue
        return None
