"""PR-6 batched fleet sweeps: aggregate throughput at 196 instances × 64 clusters.

A fleet of 64 clusters, each a paper-scale ``10 × 38416`` TP-matrix
(196 instances), decomposed three ways:

* **exact** — the historical per-cluster full-SVD path, the PR-1 baseline
  (sampled: a few clusters timed, extrapolated to the fleet — one exact
  solve is ~5 s, so timing all 64 would dominate the run);
* **batched serial** — ``sweep_fleet(serial=True)``: stacked ``(B, m, n)``
  solves through the shared batched iteration loop, one process;
* **batched parallel** — ``sweep_fleet`` across ``min(4, cpu)`` workers,
  shards shipped as shared-memory stack blocks.

The test writes ``BENCH_batch.json`` at the repo root — aggregate
auto-vs-exact speedups, batch occupancy (the fraction of stacked-loop
slice-iterations spent on unconverged matrices; dropout compaction keeps
it high), and per-arm wall times — so future PRs can track the batched
path's trajectory next to ``BENCH_rpca.json``.

Bit-for-bit ``P_D`` parity is asserted **unconditionally**: serial vs
parallel sweeps across the whole fleet, and sweep results vs per-cluster
``svd_backend="gram"`` solves on the sampled clusters. The ≥20x aggregate
speedup target is only *asserted* under ``REPRO_PERF_STRICT=1`` on a
machine with ≥4 cores (the parallel arm cannot reach it on fewer); other
runs record the numbers and skip, exactly like the RPCA runtime gate.
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import sweep_fleet
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.core.decompose import decompose
from repro.fleet import ClusterSpec
from repro.observability import Instrumentation
from repro.observability.benchrecord import bench_record, write_bench_json

MB = 1024 * 1024
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_batch.json"

N_CLUSTERS = 64
N_INSTANCES = 196
WINDOW = 10
BATCH_SIZE = 8  # 8 × (10 × 38416) stacks keep peak memory ~300 MB
SPEEDUP_TARGET = 20.0
EXACT_SAMPLE = 4
STRICT_MIN_CORES = 4


@pytest.fixture(scope="module")
def fleet():
    return [
        ClusterSpec(
            name=f"cluster{i:02d}",
            trace=generate_trace(
                TraceConfig(n_machines=N_INSTANCES, n_snapshots=WINDOW),
                seed=1000 + i,
            ),
        )
        for i in range(N_CLUSTERS)
    ]


def _occupancy(counters):
    active = counters.get("kernel.batch.active_iterations", 0)
    dropout = counters.get("kernel.batch.dropout_iterations", 0)
    total = active + dropout  # == Σ per-group loop_iterations × group size
    return active / total if total else None


def test_batch_sweep_throughput_and_emit(fleet, emit):
    # -- exact per-cluster baseline (sampled, extrapolated) -------------
    sample = fleet[:: N_CLUSTERS // EXACT_SAMPLE][:EXACT_SAMPLE]
    exact_rows = {}
    t0 = time.perf_counter()
    for spec in sample:
        dec = decompose(spec.trace.tp_matrix(8 * MB), svd_backend="exact")
        exact_rows[spec.name] = dec.constant.row
    exact_mean = (time.perf_counter() - t0) / len(sample)
    exact_fleet_est = exact_mean * N_CLUSTERS

    # -- batched serial sweep -------------------------------------------
    sink_serial = Instrumentation("bench-serial")
    t0 = time.perf_counter()
    serial = sweep_fleet(
        fleet, serial=True, batch_size=BATCH_SIZE, window=WINDOW,
        instrumentation=sink_serial,
    )
    serial_s = time.perf_counter() - t0

    # -- batched parallel sweep -----------------------------------------
    n_workers = min(STRICT_MIN_CORES, os.cpu_count() or 1)
    sink_par = Instrumentation("bench-parallel")
    t0 = time.perf_counter()
    parallel = sweep_fleet(
        fleet, n_workers=n_workers, batch_size=BATCH_SIZE, window=WINDOW,
        instrumentation=sink_par,
    )
    parallel_s = time.perf_counter() - t0

    # -- parity: unconditional, bit for bit -----------------------------
    assert set(serial.clusters) == set(parallel.clusters)
    assert len(serial.clusters) == N_CLUSTERS
    for name, s in serial.clusters.items():
        p = parallel.clusters[name]
        assert np.array_equal(s.constant_row, p.constant_row), (
            f"{name}: parallel sweep P_D diverged from serial"
        )
        assert s.iterations == p.iterations
    # Sweep slices vs the per-matrix gram oracle on the sampled clusters.
    for spec in sample:
        ref = decompose(spec.trace.tp_matrix(8 * MB), svd_backend="gram")
        assert np.array_equal(
            serial.clusters[spec.name].constant_row, ref.constant.row
        ), f"{spec.name}: batched sweep P_D diverged from per-matrix gram solve"
        # And the gram oracle agrees with exact to solver tolerance.
        scale = float(np.abs(exact_rows[spec.name]).max())
        diff = float(np.abs(ref.constant.row - exact_rows[spec.name]).max())
        assert diff <= 1e-6 * scale

    speedup_serial = exact_fleet_est / serial_s
    speedup_parallel = exact_fleet_est / parallel_s
    record = bench_record(
        "batch_sweep_196x64",
        seeds=[1000 + i for i in range(N_CLUSTERS)],
        backend="gram",  # batched sweeps always run the gram-kernel path
        matrix_shape=[WINDOW, N_INSTANCES * N_INSTANCES],
        n_clusters=N_CLUSTERS,
        batch_size=BATCH_SIZE,
        n_workers=n_workers,
        exact_sample=len(sample),
        exact_mean_seconds=exact_mean,
        exact_fleet_seconds_est=exact_fleet_est,
        serial_sweep_seconds=serial_s,
        parallel_sweep_seconds=parallel_s,
        speedup_serial_vs_exact=speedup_serial,
        speedup_parallel_vs_exact=speedup_parallel,
        speedup_target=SPEEDUP_TARGET,
        batch_occupancy_serial=_occupancy(sink_serial.counters),
        batch_occupancy_parallel=_occupancy(sink_par.counters),
        total_shards=serial.total_shards,
        parity="bitwise",
    )
    write_bench_json(BENCH_JSON, record)

    occ = record["batch_occupancy_serial"]
    emit(
        "\n".join(
            [
                f"batch sweep ({N_CLUSTERS} clusters x {N_INSTANCES} instances, "
                f"batch_size={BATCH_SIZE}):",
                f"  exact    {exact_mean:6.2f} s/cluster  "
                f"(~{exact_fleet_est:6.1f} s fleet, {len(sample)} sampled)",
                f"  serial   {serial_s:6.1f} s fleet  "
                f"{speedup_serial:5.1f}x vs exact",
                f"  parallel {parallel_s:6.1f} s fleet  "
                f"{speedup_parallel:5.1f}x vs exact  ({n_workers} workers)",
                f"  occupancy {occ:.0%}  shards {serial.total_shards}  "
                f"parity bitwise  (target >= {SPEEDUP_TARGET}x, "
                f"wrote {BENCH_JSON.name})",
            ]
        )
    )

    cores = os.cpu_count() or 1
    if os.environ.get("REPRO_PERF_STRICT") == "1" and cores >= STRICT_MIN_CORES:
        assert speedup_parallel >= SPEEDUP_TARGET, (
            f"expected >= {SPEEDUP_TARGET}x aggregate speedup over the exact "
            f"path, measured {speedup_parallel:.1f}x "
            f"({n_workers} workers, {cores} cores)"
        )
    elif speedup_parallel < SPEEDUP_TARGET:
        pytest.skip(
            f"aggregate speedup {speedup_parallel:.1f}x below "
            f"{SPEEDUP_TARGET}x target but strict gating is off "
            f"(REPRO_PERF_STRICT unset or {cores} < {STRICT_MIN_CORES} cores; "
            "recorded, not enforced)"
        )
