"""Unit tests for the monetary-cost extension."""

import pytest

from repro.economics.pricing import BillingGranularity, InstancePricing, run_cost_usd
from repro.economics.savings import savings_report


class TestPricing:
    def test_hourly_rounding(self):
        p = InstancePricing(usd_per_hour=0.12, granularity=BillingGranularity.HOURLY)
        assert p.billable_seconds(1.0) == 3600.0
        assert p.billable_seconds(3600.0) == 3600.0
        assert p.billable_seconds(3601.0) == 7200.0

    def test_per_second_billing(self):
        p = InstancePricing(granularity=BillingGranularity.PER_SECOND)
        assert p.billable_seconds(90.4) == 91.0

    def test_zero_elapsed(self):
        p = InstancePricing()
        assert p.billable_seconds(0.0) == 0.0

    def test_minimum_applies(self):
        p = InstancePricing(
            granularity=BillingGranularity.PER_SECOND, minimum_seconds=60.0
        )
        assert p.billable_seconds(5.0) == 60.0

    def test_run_cost(self):
        # 196 instances for 2 hours at $0.12/h = $47.04.
        assert run_cost_usd(7200.0, 196) == pytest.approx(47.04)

    def test_run_cost_validation(self):
        with pytest.raises(ValueError):
            run_cost_usd(10.0, 0)

    def test_pricing_validation(self):
        with pytest.raises(Exception):
            InstancePricing(usd_per_hour=0.0)


class TestSavings:
    def test_savings_positive_when_gain_survives_rounding(self):
        # Baseline 3 hours, optimized 2 hours incl. overhead: saves 1 hour.
        rep = savings_report(
            strategy="RPCA",
            baseline_elapsed_seconds=3 * 3600.0,
            strategy_elapsed_seconds=1.8 * 3600.0,
            strategy_overhead_seconds=0.1 * 3600.0,
            n_instances=64,
        )
        assert rep.pays_off
        assert rep.savings == pytest.approx(64 * 0.12)
        assert 0.3 < rep.savings_fraction < 0.4

    def test_rounding_eats_small_gains(self):
        # A 5-minute gain inside the same billed hour saves nothing (hourly).
        rep = savings_report(
            strategy="RPCA",
            baseline_elapsed_seconds=3000.0,
            strategy_elapsed_seconds=2700.0,
            n_instances=16,
        )
        assert not rep.pays_off and rep.savings == 0.0

    def test_per_second_rewards_small_gains(self):
        p = InstancePricing(granularity=BillingGranularity.PER_SECOND)
        rep = savings_report(
            strategy="RPCA",
            baseline_elapsed_seconds=3000.0,
            strategy_elapsed_seconds=2700.0,
            n_instances=16,
            pricing=p,
        )
        assert rep.pays_off

    def test_overhead_can_flip_the_verdict(self):
        rep = savings_report(
            strategy="RPCA",
            baseline_elapsed_seconds=3600.0,
            strategy_elapsed_seconds=3000.0,
            strategy_overhead_seconds=700.0,  # pushes past the billed hour
            n_instances=8,
        )
        assert not rep.pays_off
