"""Offline regime-change detection.

The online maintenance loop (Algorithm 1) reacts to significant changes as
they happen; for trace analysis we also want to locate them *offline*. A
regime change (e.g. a VM migration) moves the constant component itself, so
it shows up as a persistent shift of the cluster-mean weight level. The
detector compares, at every candidate split point, the median weight row of
a window before vs after; a relative L1 shift above the threshold flags a
change. Persistent shifts (regime changes) trigger; one-snapshot spikes
(interference) do not, because medians span whole windows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive
from ..cloudsim.trace import CalibrationTrace
from ..core.metrics import relative_difference
from ..errors import ValidationError

__all__ = ["RegimeChange", "detect_regime_changes"]


@dataclass(frozen=True, slots=True)
class RegimeChange:
    """One detected change.

    ``snapshot`` is the first snapshot of the new regime; ``shift`` is the
    relative L1 distance between the constant rows of the two windows.
    """

    snapshot: int
    shift: float


def detect_regime_changes(
    trace: CalibrationTrace,
    *,
    nbytes: float = 8 * 1024 * 1024,
    window: int = 5,
    threshold: float = 0.25,
) -> list[RegimeChange]:
    """Scan *trace* for persistent shifts of the constant component.

    Parameters
    ----------
    trace:
        The calibration trace.
    nbytes:
        Message size for the weight conversion.
    window:
        Half-window length in snapshots; candidate points range over
        ``[window, T - window]``.
    threshold:
        Relative L1 shift that counts as a regime change.

    Returns
    -------
    list[RegimeChange]
        Local-maximum change points, strongest shift per contiguous run of
        above-threshold candidates, in snapshot order.
    """
    check_positive(threshold, "threshold")
    w = int(window)
    if w < 2:
        raise ValidationError("window must be >= 2")
    t = trace.n_snapshots
    if t < 2 * w + 1:
        return []
    data = trace.tp_matrix(nbytes).data

    shifts = np.zeros(t)
    for k in range(w, t - w + 1):
        before = np.median(data[k - w : k], axis=0)
        after = np.median(data[k : k + w], axis=0)
        shifts[k] = relative_difference(after, before)

    above = shifts >= threshold
    changes: list[RegimeChange] = []
    k = w
    while k <= t - w:
        if above[k]:
            # Consume the contiguous run, keep its strongest point.
            start = k
            while k <= t - w and above[k]:
                k += 1
            peak = start + int(np.argmax(shifts[start:k]))
            changes.append(RegimeChange(snapshot=peak, shift=float(shifts[peak])))
        else:
            k += 1
    return changes
