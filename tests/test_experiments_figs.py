"""Shape tests for the per-figure experiment drivers (small scale).

These assert the *qualitative* paper findings each driver must reproduce:
orderings between arms, monotone trends, crossover locations. Paper-scale
runs live in benchmarks/.
"""

import numpy as np
import pytest

from repro.cloudsim.dynamics import DynamicsConfig
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.experiments import fig04_overhead, fig05_time_step, fig06_threshold
from repro.experiments import fig07_overall_ec2, fig08_cluster_size
from repro.experiments import fig09_apps, fig10_ne_impact, fig11_ne02

MB = 1024 * 1024


class TestFig04:
    def test_monotone_and_linear(self):
        res = fig04_overhead.run(sizes=(16, 32, 64, 128, 196))
        ys = np.array(res.overhead_seconds)
        assert np.all(np.diff(ys) > 0)
        # Paper anchor points.
        assert res.overhead_seconds[2] < 240.0  # 64 instances < 4 min
        assert 480 < res.overhead_seconds[4] < 780  # 196 ≈ 10 min

    def test_rows_render(self):
        res = fig04_overhead.run(sizes=(16, 32))
        rows = res.as_rows()
        assert len(rows) == 2 and rows[0][0] == 16


class TestFig05:
    def test_difference_decreases_with_step(self, small_trace):
        res = fig05_time_step.run(
            small_trace, time_steps=(2, 5, 10, 20), solver="row_constant"
        )
        d = res.relative_differences
        assert d[-1] <= d[0]
        assert d[-1] < 0.05  # near-oracle at the largest step

    def test_selection_rule(self):
        assert fig05_time_step.select_time_step((2, 5, 10), (0.5, 0.08, 0.01), 0.10) == 5
        assert fig05_time_step.select_time_step((2, 5), (0.5, 0.4), 0.10) == 5

    def test_steps_clipped_to_trace(self, tiny_trace):
        res = fig05_time_step.run(
            tiny_trace, time_steps=(2, 5, 50), solver="row_constant"
        )
        assert res.time_steps == (2, 5)


class TestFig06:
    @pytest.fixture(scope="class")
    def trace(self):
        cfg = TraceConfig(
            n_machines=10,
            n_snapshots=60,
            dynamics=DynamicsConfig(
                volatility_sigma=0.10,
                spike_probability=0.03,
                spike_severity=2.0,
                migration_rate=0.08,
            ),
        )
        return generate_trace(cfg, seed=21)

    def test_threshold_tradeoff(self, trace):
        res = fig06_threshold.run(
            trace,
            thresholds=(0.05, 1.0, 3.0),
            time_step=8,
            calibration_cost=30.0,
            seed=0,
        )
        lo, mid, hi = res.outcomes
        # Thrash at a tiny threshold: many recalibrations, big overhead.
        assert lo.recalibrations > mid.recalibrations >= hi.recalibrations
        assert lo.avg_maintenance_overhead > mid.avg_maintenance_overhead
        # The moderate threshold beats the thrashing one on total time.
        assert mid.avg_total_time < lo.avg_total_time

    def test_breakdown_consistency(self, trace):
        res = fig06_threshold.run(
            trace, thresholds=(0.5,), time_step=8, calibration_cost=10.0, seed=0
        )
        o = res.outcomes[0]
        assert o.avg_total_time == pytest.approx(
            o.avg_communication_time + o.avg_maintenance_overhead
        )
        assert o.operations == 52

    def test_huge_threshold_never_recalibrates(self, trace):
        res = fig06_threshold.run(
            trace, thresholds=(50.0,), time_step=8, calibration_cost=10.0, seed=0
        )
        assert res.outcomes[0].recalibrations == 0

    def test_collectives_per_operation_scales_comm_only(self, trace):
        one = fig06_threshold.run(
            trace, thresholds=(1.0,), time_step=8, calibration_cost=10.0,
            collectives_per_operation=1, seed=0,
        ).outcomes[0]
        forty = fig06_threshold.run(
            trace, thresholds=(1.0,), time_step=8, calibration_cost=10.0,
            collectives_per_operation=40, seed=0,
        ).outcomes[0]
        # Scaling both expected and observed leaves the deviation ratio (and
        # hence the recalibration pattern) unchanged; only comm time scales.
        assert forty.recalibrations == one.recalibrations
        assert forty.avg_communication_time == pytest.approx(
            40 * one.avg_communication_time
        )

    def test_collectives_per_operation_validated(self, trace):
        with pytest.raises(Exception):
            fig06_threshold.run(
                trace, thresholds=(1.0,), time_step=8,
                collectives_per_operation=0, seed=0,
            )


class TestFig07:
    @pytest.fixture(scope="class")
    def result(self, request):
        trace = generate_trace(TraceConfig(n_machines=12, n_snapshots=26), seed=5)
        return fig07_overall_ec2.run(
            trace, repetitions=60, solver="row_constant", seed=0
        )

    def test_orderings(self, result):
        for res in (result.broadcast, result.scatter, result.mapping):
            norm = res.normalized_means()
            assert norm["RPCA"] < 1.0  # beats Baseline
            assert norm["Heuristics"] < 1.0

    def test_rpca_at_least_matches_heuristics_on_broadcast(self, result):
        assert result.broadcast.mean("RPCA") <= result.broadcast.mean("Heuristics") * 1.05

    def test_norm_ne_near_ec2(self, result):
        assert 0.03 < result.norm_ne < 0.25

    def test_cdf_available(self, result):
        v, f = result.broadcast_cdf("RPCA")
        assert v.size == 60 and f[-1] == 1.0

    def test_table_shape(self, result):
        rows = result.normalized_table()
        assert {r[0] for r in rows} == {"Baseline", "Heuristics", "RPCA"}


class TestFig08:
    def test_size_effect(self):
        res = fig08_cluster_size.run(
            cluster_sizes=(8, 24),
            message_sizes=(8.0 * MB,),
            n_snapshots=16,
            time_step=8,
            repetitions=16,
            solver="row_constant",
            colocation=0.85,
            seed=3,
        )
        small = res.improvement(8, 8.0 * MB)
        large = res.improvement(24, 8.0 * MB)
        # The bigger cluster spans more racks and benefits at least as much.
        cells = {c.n_machines: c for c in res.cells}
        assert cells[24].cross_rack_fraction >= cells[8].cross_rack_fraction
        assert large > 0.0
        assert large >= small - 0.05


class TestFig09:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(TraceConfig(n_machines=8, n_snapshots=16), seed=9)

    def test_cg_gain_grows_with_size(self, trace):
        res = fig09_apps.run_cg(
            trace, vector_sizes=(1000, 64000), solver="row_constant", time_step=8
        )
        small_gain = res.improvement(1000.0, "RPCA", "Baseline")
        big_gain = res.improvement(64000.0, "RPCA", "Baseline")
        assert big_gain > small_gain
        # At tiny sizes the overhead makes RPCA lose, as in the paper.
        assert small_gain < 0.0

    def test_cg_is_communication_bound(self, trace):
        res = fig09_apps.run_cg(
            trace, vector_sizes=(64000,), solver="row_constant", time_step=8
        )
        bd = next(p.breakdown for p in res.points if p.strategy == "Baseline")
        assert bd.communication / bd.total > 0.9

    def test_nbody_steps_amortize_overhead(self, trace):
        res = fig09_apps.run_nbody_steps(
            trace, step_counts=(10, 640), solver="row_constant", time_step=8
        )
        assert res.improvement(640.0, "RPCA", "Baseline") > res.improvement(
            10.0, "RPCA", "Baseline"
        )

    def test_nbody_msgsize_improvement_grows(self, trace):
        # The paper's claim is relative: the improvement is larger for
        # larger message sizes (overhead contribution shrinks).
        res = fig09_apps.run_nbody_msgsize(
            trace,
            message_sizes=(1024.0, 1.0 * MB),
            n_steps=2560,
            solver="row_constant",
            time_step=8,
        )
        assert res.improvement(float(MB), "RPCA", "Baseline") > res.improvement(
            1024.0, "RPCA", "Baseline"
        )
        # Communication time itself must improve at the large size.
        comm = {
            p.strategy: p.breakdown.communication
            for p in res.points
            if p.x == float(MB)
        }
        assert comm["RPCA"] < comm["Baseline"]

    def test_rows_render(self, trace):
        res = fig09_apps.run_nbody_steps(
            trace, step_counts=(10,), solver="row_constant", time_step=8
        )
        rows = res.as_rows()
        assert len(rows) == 3  # three strategies at one x


class TestFig10And11:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(TraceConfig(n_machines=10, n_snapshots=22), seed=13)

    def test_improvement_decays_with_ne(self, trace):
        res = fig10_ne_impact.run(
            trace,
            targets=(0.15, 0.5),
            repetitions=20,
            solver="row_constant",
            seed=1,
        )
        pts = res.points
        assert pts[0].achieved_norm_ne < pts[1].achieved_norm_ne
        assert pts[0].broadcast_vs_baseline > pts[1].broadcast_vs_baseline

    def test_fig11_detailed_study(self, trace):
        res = fig11_ne02.run(
            trace,
            target_norm_ne=0.2,
            repetitions=20,
            solver="row_constant",
            seed=2,
        )
        assert res.achieved_norm_ne == pytest.approx(0.2, abs=0.03)
        norm = res.comparison.broadcast.normalized_means()
        assert norm["RPCA"] < 1.0
