"""Shared fixtures: small synthetic traces and reusable matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloudsim.dynamics import DynamicsConfig
from repro.cloudsim.tracegen import TraceConfig, generate_trace

MB = 1024 * 1024


@pytest.fixture(scope="session")
def small_trace():
    """8 machines × 24 snapshots with default (EC2-like) dynamics."""
    return generate_trace(TraceConfig(n_machines=8, n_snapshots=24), seed=42)


@pytest.fixture(scope="session")
def tiny_trace():
    """4 machines × 10 snapshots — the smallest interesting trace."""
    return generate_trace(TraceConfig(n_machines=4, n_snapshots=10), seed=7)


@pytest.fixture(scope="session")
def calm_trace():
    """8 machines × 20 snapshots with dynamics disabled (pure bands)."""
    cfg = TraceConfig(
        n_machines=8,
        n_snapshots=20,
        dynamics=DynamicsConfig(
            volatility_sigma=0.0,
            spike_probability=0.0,
            hotspot_probability=0.0,
            migration_rate=0.0,
        ),
    )
    return generate_trace(cfg, seed=11)


@pytest.fixture(scope="session")
def migrating_trace():
    """12 machines × 40 snapshots with frequent migrations (regime changes)."""
    cfg = TraceConfig(
        n_machines=12,
        n_snapshots=40,
        dynamics=DynamicsConfig(
            volatility_sigma=0.08,
            spike_probability=0.02,
            spike_severity=1.5,
            migration_rate=0.05,
        ),
    )
    return generate_trace(cfg, seed=99)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
