"""Update maintenance — paper Algorithm 1 lines 4–9.

After decomposing a calibration into a constant component, the approach
keeps using that component until the *real* performance ``t`` of the guided
operation deviates from the *expected* performance ``t'`` (predicted from the
constant component under the α-β model) by more than a relative threshold:

    |t − t'| / t' ≥ threshold   →   re-calibrate, re-run RPCA.

:class:`MaintenanceController` encapsulates this feedback loop as a pure
state machine: callers report ``(expected, observed)`` pairs and receive a
:class:`MaintenanceDecision`; the controller never performs measurements
itself, so it composes with any substrate (live trace replay, netsim, real
MPI). The paper's default threshold is 100% (Fig 6 shows ≈100% is the sweet
spot: below ~20% the loop thrashes, above ~150% it never re-calibrates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .._validation import check_nonnegative, check_positive

__all__ = ["MaintenanceDecision", "MaintenanceController", "MaintenanceStats"]


class MaintenanceDecision(Enum):
    """What the controller tells the caller to do next."""

    KEEP = "keep"  # constant component still valid; reuse it
    RECALIBRATE = "recalibrate"  # significant change detected; re-measure


@dataclass
class MaintenanceStats:
    """Running counters over the controller's lifetime."""

    observations: int = 0
    recalibrations: int = 0
    max_relative_deviation: float = 0.0
    deviations: list[float] = field(default_factory=list)


class MaintenanceController:
    """Threshold-based change detector for the constant component.

    Parameters
    ----------
    threshold:
        Relative deviation that counts as a *significant change*; the
        paper's default is 1.0 (i.e. 100%).
    consecutive:
        Number of consecutive above-threshold observations required before
        signalling recalibration. The paper uses 1 (every deviation
        triggers); values > 1 debounce one-off spikes and are used in the
        ablation benches.

    Examples
    --------
    >>> c = MaintenanceController(threshold=1.0)
    >>> c.observe(expected=1.0, observed=1.5)
    <MaintenanceDecision.KEEP: 'keep'>
    >>> c.observe(expected=1.0, observed=2.5)
    <MaintenanceDecision.RECALIBRATE: 'recalibrate'>
    """

    def __init__(self, threshold: float = 1.0, *, consecutive: int = 1) -> None:
        self.threshold = check_positive(threshold, "threshold")
        if int(consecutive) < 1:
            raise ValueError("consecutive must be >= 1")
        self.consecutive = int(consecutive)
        self._streak = 0
        self.stats = MaintenanceStats()

    def relative_deviation(self, expected: float, observed: float) -> float:
        """``|t − t'| / t'`` — the paper's deviation measure."""
        check_positive(expected, "expected")
        check_nonnegative(observed, "observed")
        return abs(observed - expected) / expected

    def observe(self, expected: float, observed: float) -> MaintenanceDecision:
        """Feed one (expected, observed) pair; get the next action.

        A ``RECALIBRATE`` decision resets the internal streak — the caller is
        assumed to re-calibrate before the next observation.
        """
        dev = self.relative_deviation(expected, observed)
        self.stats.observations += 1
        self.stats.deviations.append(dev)
        if dev > self.stats.max_relative_deviation:
            self.stats.max_relative_deviation = dev
        if dev >= self.threshold:
            self._streak += 1
        else:
            self._streak = 0
        if self._streak >= self.consecutive:
            self._streak = 0
            self.stats.recalibrations += 1
            return MaintenanceDecision.RECALIBRATE
        return MaintenanceDecision.KEEP

    def reset(self) -> None:
        """Clear streak state (counters in :attr:`stats` are preserved)."""
        self._streak = 0
