"""Fluid flow-level discrete-event simulator.

State is the set of active flows; between events every active flow drains at
its current max-min fair rate. Rates change only at flow arrivals and
completions, so those are the only events. The engine:

1. advances every active flow's ``remaining`` by ``rate × Δt`` up to *now*,
2. applies the event (add or retire a flow),
3. recomputes the fair-share allocation,
4. schedules the earliest projected completion (stale completion events are
   detected with an epoch counter instead of queue surgery).

Completion callbacks let workloads self-perpetuate (background traffic
schedules its next message when the previous one finishes) and let probes
record their transfer times.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .._validation import check_nonnegative, check_positive
from ..errors import SimulationError
from .fairshare import max_min_fair_rates
from .topology import TreeTopology

__all__ = ["Flow", "FlowRecord", "FlowSimulator"]

_EPS = 1e-12


@dataclass
class Flow:
    """One in-flight transfer."""

    flow_id: int
    src: int
    dst: int
    size_bytes: float
    start_time: float
    path: tuple[int, ...]
    tag: str = ""
    remaining: float = field(default=0.0)
    rate: float = field(default=0.0)
    on_complete: Callable[["FlowSimulator", "FlowRecord"], None] | None = None

    def __post_init__(self) -> None:
        if self.remaining == 0.0:
            self.remaining = float(self.size_bytes)


@dataclass(frozen=True, slots=True)
class FlowRecord:
    """Completed-flow record.

    ``duration`` includes path propagation latency; ``throughput`` is
    goodput over the data phase only (size / drain time), which is what a
    bandwidth probe would report.
    """

    flow_id: int
    src: int
    dst: int
    size_bytes: float
    start_time: float
    end_time: float
    tag: str

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def throughput(self, latency: float = 0.0) -> float:
        drain = self.duration - latency
        if drain <= 0:
            return np.inf
        return self.size_bytes / drain


class FlowSimulator:
    """Event-driven fluid simulator over a :class:`TreeTopology`.

    Parameters
    ----------
    topology:
        The datacenter tree.

    Notes
    -----
    Time is in seconds. All scheduling must be at or after :attr:`now`.
    """

    def __init__(self, topology: TreeTopology) -> None:
        self.topology = topology
        self.now: float = 0.0
        self._queue: list[tuple[float, int, str, object]] = []
        self._seq = itertools.count()
        self._flow_ids = itertools.count()
        self._active: dict[int, Flow] = {}
        self._epoch = 0  # invalidates stale completion events
        self.completed: list[FlowRecord] = []
        self._rates_dirty = False

    # -- public API -------------------------------------------------------
    @property
    def n_active(self) -> int:
        return len(self._active)

    def schedule_flow(
        self,
        at: float,
        src: int,
        dst: int,
        size_bytes: float,
        *,
        tag: str = "",
        on_complete: Callable[["FlowSimulator", FlowRecord], None] | None = None,
    ) -> int:
        """Schedule a transfer to start at time *at*; returns its flow id."""
        if at < self.now - _EPS:
            raise SimulationError(f"cannot schedule in the past ({at} < {self.now})")
        check_positive(size_bytes, "size_bytes")
        flow = Flow(
            flow_id=next(self._flow_ids),
            src=int(src),
            dst=int(dst),
            size_bytes=float(size_bytes),
            start_time=float(at),
            path=self.topology.path(int(src), int(dst)),
            tag=tag,
            on_complete=on_complete,
        )
        heapq.heappush(self._queue, (float(at), next(self._seq), "arrival", flow))
        return flow.flow_id

    def call_at(self, at: float, fn: Callable[["FlowSimulator"], None]) -> None:
        """Schedule an arbitrary callback (used by workload generators)."""
        if at < self.now - _EPS:
            raise SimulationError(f"cannot schedule in the past ({at} < {self.now})")
        heapq.heappush(self._queue, (float(at), next(self._seq), "callback", fn))

    def run_until(self, t: float) -> None:
        """Process all events with time ≤ *t*, then advance the clock to *t*."""
        check_nonnegative(t, "t")
        if t < self.now - _EPS:
            raise SimulationError(f"cannot run backwards ({t} < {self.now})")
        while self._queue and self._queue[0][0] <= t + _EPS:
            when, _, kind, payload = heapq.heappop(self._queue)
            when = max(when, self.now)
            self._drain_to(when)
            if kind == "arrival":
                self._handle_arrival(payload)  # type: ignore[arg-type]
            elif kind == "completion":
                self._handle_completion(payload)  # type: ignore[arg-type]
            else:  # callback
                payload(self)  # type: ignore[operator]
            if self._rates_dirty:
                self._recompute_rates()
        self._drain_to(t)

    def run_until_idle(self, *, horizon: float = np.inf) -> None:
        """Run until no events remain (or *horizon* is reached)."""
        guard = 0
        while self._queue and self._queue[0][0] <= horizon:
            self.run_until(min(self._queue[0][0], horizon))
            guard += 1
            if guard > 10_000_000:  # pragma: no cover - runaway guard
                raise SimulationError("run_until_idle exceeded event budget")
        if np.isfinite(horizon) and horizon > self.now:
            self._drain_to(horizon)
            self.now = horizon

    # -- internals ----------------------------------------------------------
    def _drain_to(self, t: float) -> None:
        """Advance every active flow's progress to time *t*."""
        dt = t - self.now
        if dt < -_EPS:
            raise SimulationError("time went backwards")
        if dt > 0 and self._active:
            for flow in self._active.values():
                flow.remaining -= flow.rate * dt
                if flow.remaining < 0:
                    flow.remaining = 0.0
        self.now = max(self.now, t)

    def _handle_arrival(self, flow: Flow) -> None:
        self._active[flow.flow_id] = flow
        self._rates_dirty = True

    def _handle_completion(self, payload: object) -> None:
        flow_id, epoch = payload  # type: ignore[misc]
        if epoch != self._epoch:
            return  # stale projection; rates changed since it was scheduled
        flow = self._active.get(flow_id)
        if flow is None:
            return
        if flow.remaining > _EPS * max(1.0, flow.size_bytes):
            # Numerical slack: treat as done only if truly drained.
            self._rates_dirty = True
            return
        del self._active[flow.flow_id]
        latency = self.topology.path_latency(flow.src, flow.dst)
        record = FlowRecord(
            flow_id=flow.flow_id,
            src=flow.src,
            dst=flow.dst,
            size_bytes=flow.size_bytes,
            start_time=flow.start_time,
            end_time=self.now + latency,
            tag=flow.tag,
        )
        self.completed.append(record)
        self._rates_dirty = True
        if flow.on_complete is not None:
            flow.on_complete(self, record)

    def _recompute_rates(self) -> None:
        self._rates_dirty = False
        self._epoch += 1
        if not self._active:
            return
        flows = list(self._active.values())
        n_links = self.topology.n_links
        inc = np.zeros((len(flows), n_links), dtype=bool)
        for i, fl in enumerate(flows):
            inc[i, list(fl.path)] = True
        rates = max_min_fair_rates(inc, self.topology.capacities)
        next_done: tuple[float, int] | None = None
        for fl, rate in zip(flows, rates):
            fl.rate = float(rate)
            if rate > 0:
                eta = self.now + fl.remaining / rate
                if next_done is None or eta < next_done[0]:
                    next_done = (eta, fl.flow_id)
        if next_done is not None:
            heapq.heappush(
                self._queue,
                (next_done[0], next(self._seq), "completion", (next_done[1], self._epoch)),
            )
