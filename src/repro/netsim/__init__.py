"""ns-2 substitute: a flow-level discrete-event network simulator.

The paper's large-scale study simulates a 1024-machine two-level tree
(32 racks × 32 servers; 1 Gb/s inside a rack, 10 Gb/s between racks) in
ns-2 with Poisson background traffic. This package reproduces that setup at
the flow level: TCP bandwidth sharing is abstracted as max-min fairness over
the tree's directed links, and a fluid event-driven engine tracks every
flow's progress as the fair-share allocation changes with arrivals and
completions. Measurement probes (ping-pong) run *inside* the simulation,
concurrently with background traffic, exactly like the paper's calibrations
run on a busy cloud.
"""

from .topology import TreeTopology
from .fattree import FatTreeTopology
from .fairshare import max_min_fair_rates
from .simulator import FlowSimulator, Flow, FlowRecord
from .background import BackgroundTraffic, BackgroundConfig
from .probe import NetsimSubstrate
from .collective_runner import (
    MeasuredCollective,
    run_broadcast_in_sim,
    run_scatter_in_sim,
)

__all__ = [
    "TreeTopology",
    "FatTreeTopology",
    "max_min_fair_rates",
    "FlowSimulator",
    "Flow",
    "FlowRecord",
    "BackgroundTraffic",
    "BackgroundConfig",
    "NetsimSubstrate",
    "MeasuredCollective",
    "run_broadcast_in_sim",
    "run_scatter_in_sim",
]
