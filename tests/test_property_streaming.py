"""Property-based tests for streaming RPCA (hypothesis).

Three invariants the v1.1 streaming mode promises, checked over generated
snapshot streams rather than hand-picked traces:

1. **Tolerance is honored in service.** For any generated trace and window
   length, every decomposition a streaming session serves — fold or
   fallback — reconstructs the window within the certified drift tolerance
   of what a cold batch re-solve reconstructs (fallback re-solves *are*
   that re-solve, bit for bit; a fold's model may split low-rank vs sparse
   differently from the oracle, but what it explains must agree).
2. **Checkpoint splits are invisible.** Cutting the fold stream at *any*
   point, pushing the streaming state through a real checkpoint file and
   rebuilding a fresh engine yields folds bit-identical to the uncut run.
3. **Fallback restores bit-parity.** Whatever state the stream was in when
   a fallback fires, the recovery calibrate is bit-identical to a cold
   :func:`~repro.core.decompose.decompose` of the same window.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloudsim.dynamics import DynamicsConfig
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.core.decompose import decompose
from repro.core.engine import DecompositionEngine
from repro.core.streaming import stream_state_from_payload, stream_state_to_payload
from repro.persistence import read_checkpoint, write_checkpoint
from repro.persistence.state import STATE_SCHEMA_VERSION

MB = 1024 * 1024


@st.composite
def scenarios(draw):
    """A small trace plus a window length: one streaming session's world."""
    seed = draw(st.integers(min_value=0, max_value=2**16))
    n_machines = draw(st.integers(min_value=4, max_value=6))
    time_step = draw(st.integers(min_value=3, max_value=6))
    slides = draw(st.integers(min_value=2, max_value=8))
    volatility = draw(st.floats(min_value=0.01, max_value=0.3))
    trace = generate_trace(
        TraceConfig(
            n_machines=n_machines,
            n_snapshots=time_step + slides,
            dynamics=DynamicsConfig(volatility_sigma=volatility),
        ),
        seed=seed,
    )
    return trace, time_step


def _run_stream(engine, trace, time_step):
    """Drive every slide; yield (end, decomposition, was_fold)."""
    engine.calibrate(time_step)
    for end in range(time_step + 1, trace.n_snapshots + 1):
        if engine.stream_plan(end) == "fold":
            dec, _reason = engine.stream_fold(end)
            if dec is not None:
                yield end, dec, True
                continue
        yield end, engine.calibrate(end), False


class TestStreamingStaysWithinTolerance:
    @given(scenario=scenarios())
    @settings(max_examples=25, deadline=None)
    def test_every_served_window_tracks_the_batch_oracle(self, scenario):
        trace, time_step = scenario
        engine = DecompositionEngine(
            trace, nbytes=8 * MB, time_step=time_step, mode="streaming"
        )
        tol = engine.stream_config.tolerance
        for end, dec, was_fold in _run_stream(engine, trace, time_step):
            oracle = decompose(
                trace.tp_matrix(8 * MB, start=end - time_step, count=time_step)
            )
            if not was_fold:
                # Certified: any batch solve in streaming mode is cold.
                assert np.array_equal(dec.constant.row, oracle.constant.row)
                continue
            # The in-service model honors its own drift ceiling...
            state = engine.export_stream_state()
            assert state is not None and state.drift <= tol
            # ...and, recomputed independently, its reconstruction agrees
            # with the batch re-solve's within that ceiling: window-mean
            # relative L1 per row, with a small slack for the oracle's own
            # convergence residual.
            sr = oracle.solver_result
            assert sr is not None
            stream_recon = state.coeffs @ state.basis + state.sparse
            oracle_recon = sr.low_rank + sr.sparse
            rel = np.array([
                np.abs(stream_recon[i] - oracle_recon[i]).sum()
                / max(np.abs(oracle_recon[i]).sum(), 1e-300)
                for i in range(time_step)
            ])
            assert float(rel.mean()) <= tol + 0.02, (
                f"fold at end={end} reconstructs outside tolerance {tol}"
            )


class TestCheckpointSplitInvisible:
    @given(scenario=scenarios(), data=st.data())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_split_resumes_bit_identically(self, tmp_path, scenario, data):
        trace, time_step = scenario
        ends = list(range(time_step + 1, trace.n_snapshots + 1))
        split = data.draw(
            st.integers(min_value=0, max_value=len(ends)), label="split"
        )

        # Uncut reference run, recording every served constant row.
        ref_engine = DecompositionEngine(
            trace, nbytes=8 * MB, time_step=time_step, mode="streaming"
        )
        reference = {
            end: dec.constant.row.copy()
            for end, dec, _ in _run_stream(ref_engine, trace, time_step)
        }

        # Cut run: stop after `split` slides, checkpoint the stream state,
        # rebuild a fresh engine from the file, finish the stream.
        a = DecompositionEngine(
            trace, nbytes=8 * MB, time_step=time_step, mode="streaming"
        )
        a.calibrate(time_step)
        for end in ends[:split]:
            if a.stream_plan(end) == "fold":
                dec, _reason = a.stream_fold(end)
                if dec is not None:
                    continue
            a.calibrate(end)

        state = a.export_stream_state()
        b = DecompositionEngine(
            trace, nbytes=8 * MB, time_step=time_step, mode="streaming"
        )
        if state is not None:
            arrays, meta = stream_state_to_payload(state)
            path = tmp_path / "stream.ckpt"
            write_checkpoint(
                path, arrays, {"schema": STATE_SCHEMA_VERSION, "stream": meta}
            )
            ckpt = read_checkpoint(path)
            b.import_stream_state(
                stream_state_from_payload(ckpt.arrays, ckpt.meta["stream"])
            )
            # The checkpoint channel is bit-exact.
            restored = b.export_stream_state()
            for name in ("basis", "coeffs", "sparse", "keys", "row_err"):
                assert (
                    getattr(restored, name).tobytes()
                    == getattr(state, name).tobytes()
                )

        for end in ends[split:]:
            if b.stream_plan(end) == "fold":
                dec, _reason = b.stream_fold(end)
                if dec is None:
                    dec = b.calibrate(end)
            else:
                dec = b.calibrate(end)
            assert np.array_equal(dec.constant.row, reference[end]), (
                f"split at slide {split}: end={end} diverged after resume"
            )


class TestFallbackRestoresBitParity:
    @given(scenario=scenarios())
    @settings(max_examples=25, deadline=None)
    def test_forced_fallback_recalibration_matches_cold_decompose(
        self, scenario
    ):
        trace, time_step = scenario
        engine = DecompositionEngine(
            trace, nbytes=8 * MB, time_step=time_step, mode="streaming",
            stream_tolerance=1e-12,  # every fold trips the drift ceiling
        )
        engine.calibrate(time_step)
        fallbacks = 0
        for end in range(time_step + 1, trace.n_snapshots + 1):
            if engine.stream_plan(end) == "fold":
                dec, reason = engine.stream_fold(end)
                assert dec is None, "1e-12 drift ceiling cannot be met"
                fallbacks += 1
            recal = engine.calibrate(end)
            oracle = decompose(
                trace.tp_matrix(8 * MB, start=end - time_step, count=time_step)
            )
            assert np.array_equal(recal.constant.row, oracle.constant.row)
        assert fallbacks > 0
