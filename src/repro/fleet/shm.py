"""Zero-copy trace transport between the fleet scheduler and its workers.

Shipping a :class:`~repro.cloudsim.trace.CalibrationTrace` to a worker by
pickling it copies ``2 * T * N * N`` float64s per batch — the dominant IPC
cost for realistic traces. Instead the scheduler writes each cluster's trace
into one :class:`multiprocessing.shared_memory.SharedMemory` segment *once*
and passes workers a tiny :class:`TraceBlockDescriptor` (name + shape).
Workers map the segment and hand the engine read-only numpy views of it; no
trace bytes ever cross a pipe.

Layout of a block (single contiguous segment)::

    [ alpha: T*N*N float64 | beta: T*N*N float64 | timestamps: T float64
      | mask: T*N*N uint8 (only when the trace has one) ]

``alpha``/``beta``/``timestamps`` views are genuinely zero-copy:
``CalibrationTrace.__post_init__`` calls ``np.ascontiguousarray`` which is a
no-op for these already-contiguous float64 views, then marks them read-only
— exactly the aliasing we want. The boolean mask is copied on construction
by the trace itself (it normalizes and re-diagonalizes), which is fine: the
mask is 1/16 the size of the measurement payload.
"""

from __future__ import annotations

from dataclasses import dataclass
import multiprocessing
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..cloudsim.trace import CalibrationTrace
from ..errors import FleetError

__all__ = ["SharedTraceBlock", "TraceBlockDescriptor"]


@dataclass(frozen=True, slots=True)
class TraceBlockDescriptor:
    """Pickle-cheap handle for a shared trace block (name + geometry)."""

    name: str
    n_snapshots: int
    n_machines: int
    has_mask: bool

    @property
    def nbytes(self) -> int:
        cube = self.n_snapshots * self.n_machines * self.n_machines
        total = (2 * cube + self.n_snapshots) * 8
        if self.has_mask:
            total += cube
        return total


class SharedTraceBlock:
    """A calibration trace resident in one shared-memory segment.

    The creating process (the scheduler) owns the segment and must call
    :meth:`unlink` when the fleet run ends; attaching processes (workers)
    only :meth:`close` their mapping. Use as a context manager for the
    owner side.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        descriptor: TraceBlockDescriptor,
        *,
        owner: bool,
    ) -> None:
        self._shm = shm
        self.descriptor = descriptor
        self._owner = owner
        self._closed = False

    # -- construction --------------------------------------------------

    @classmethod
    def create(cls, trace: CalibrationTrace) -> "SharedTraceBlock":
        """Copy *trace* into a fresh shared-memory segment (owner side)."""
        t, n = trace.n_snapshots, trace.n_machines
        desc_probe = TraceBlockDescriptor(
            name="", n_snapshots=t, n_machines=n, has_mask=trace.mask is not None
        )
        shm = shared_memory.SharedMemory(create=True, size=desc_probe.nbytes)
        descriptor = TraceBlockDescriptor(
            name=shm.name, n_snapshots=t, n_machines=n, has_mask=trace.mask is not None
        )
        block = cls(shm, descriptor, owner=True)
        alpha, beta, ts, mask = block._views()
        alpha[...] = trace.alpha
        beta[...] = trace.beta
        ts[...] = trace.timestamps
        if mask is not None:
            mask[...] = trace.mask.astype(np.uint8)
        return block

    @classmethod
    def attach(cls, descriptor: TraceBlockDescriptor) -> "SharedTraceBlock":
        """Map an existing segment (worker side); never takes ownership."""
        try:
            shm = shared_memory.SharedMemory(name=descriptor.name)
        except FileNotFoundError as exc:
            raise FleetError(
                f"shared trace block {descriptor.name!r} is gone "
                "(scheduler unlinked it early?)"
            ) from exc
        # CPython's SharedMemory registers *every* handle with a resource
        # tracker. Under spawn the attaching child runs its *own* tracker,
        # which at child exit "cleans up" — i.e. destroys — a segment the
        # scheduler still owns, so the attach must be deregistered. Under
        # fork the tracker process is shared with the creator: registration
        # is idempotent there, and unregistering would strip the *owner's*
        # entry instead. Ownership is strictly creator-side either way.
        if multiprocessing.get_start_method(allow_none=True) != "fork":
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        return cls(shm, descriptor, owner=False)

    # -- access --------------------------------------------------------

    def _views(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
        if self._closed:
            raise FleetError("shared trace block is closed")
        d = self.descriptor
        t, n = d.n_snapshots, d.n_machines
        cube = t * n * n
        buf = self._shm.buf
        alpha = np.ndarray((t, n, n), dtype=np.float64, buffer=buf, offset=0)
        beta = np.ndarray((t, n, n), dtype=np.float64, buffer=buf, offset=cube * 8)
        ts = np.ndarray((t,), dtype=np.float64, buffer=buf, offset=2 * cube * 8)
        mask = None
        if d.has_mask:
            mask = np.ndarray(
                (t, n, n), dtype=np.uint8, buffer=buf, offset=(2 * cube + t) * 8
            )
        return alpha, beta, ts, mask

    def trace(self) -> CalibrationTrace:
        """Rebuild the trace as read-only views over the segment.

        The returned trace aliases this block's memory: keep the block
        open for as long as the trace (or any session built on it) lives.
        """
        alpha, beta, ts, mask = self._views()
        return CalibrationTrace(
            alpha=alpha,
            beta=beta,
            timestamps=ts,
            mask=None if mask is None else mask.astype(bool),
        )

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (safe to call twice)."""
        if not self._closed:
            self._closed = True
            self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment. Owner side only; implies :meth:`close`."""
        if not self._owner:
            raise FleetError("only the creating process may unlink a trace block")
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedTraceBlock":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()
