"""Pricing a task-to-machine mapping against a live network snapshot.

Two costs are reported:

* :func:`mapping_total_time` — the sum over task edges of the α-β transfer
  time of the hosting link. This is the standard volume-weighted dilation
  objective and the metric the experiment drivers use.
* :func:`mapping_bottleneck_time` — the slowest single edge, a congestion
  proxy.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_square_matrix
from ..errors import MappingError
from .taskgraph import TaskGraph

__all__ = ["mapping_total_time", "mapping_bottleneck_time", "bandwidth_from_weights"]


def _edge_times(
    task_graph: TaskGraph,
    mapping: np.ndarray,
    alpha: np.ndarray,
    beta: np.ndarray,
) -> np.ndarray:
    m = np.asarray(mapping, dtype=np.intp)
    if m.size != task_graph.n_tasks:
        raise MappingError("mapping length must equal the number of tasks")
    if len(set(m.tolist())) != m.size:
        raise MappingError("mapping must be injective")
    a = as_square_matrix(alpha, "alpha")
    b = np.asarray(beta, dtype=np.float64)
    if b.shape != a.shape:
        raise MappingError("alpha/beta shape mismatch")
    if m.min() < 0 or m.max() >= a.shape[0]:
        raise MappingError("mapping points outside the machine set")
    src, dst = np.nonzero(task_graph.volumes)
    if src.size == 0:
        return np.zeros(0)
    vols = task_graph.volumes[src, dst]
    ms, md = m[src], m[dst]
    return a[ms, md] + vols / b[ms, md]


def mapping_total_time(
    task_graph: TaskGraph,
    mapping: np.ndarray,
    alpha: np.ndarray,
    beta: np.ndarray,
) -> float:
    """Sum of per-edge α-β transfer times under *mapping*."""
    return float(_edge_times(task_graph, mapping, alpha, beta).sum())


def mapping_bottleneck_time(
    task_graph: TaskGraph,
    mapping: np.ndarray,
    alpha: np.ndarray,
    beta: np.ndarray,
) -> float:
    """Slowest single task edge under *mapping* (0 for an edgeless graph)."""
    times = _edge_times(task_graph, mapping, alpha, beta)
    return float(times.max()) if times.size else 0.0


def bandwidth_from_weights(weights: np.ndarray) -> np.ndarray:
    """Convert a transfer-time weight matrix to a bandwidth-like affinity.

    The greedy mapper wants "larger is better"; the reciprocal of a weight
    matrix (diagonal forced to 0) provides that monotone conversion.
    """
    w = as_square_matrix(weights, "weights")
    n = w.shape[0]
    off = ~np.eye(n, dtype=bool)
    if np.any(w[off] <= 0):
        raise MappingError("weights must be positive off-diagonal")
    bw = np.zeros_like(w)
    bw[off] = 1.0 / w[off]
    return bw
