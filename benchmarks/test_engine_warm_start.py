"""Warm-started re-calibration vs the historical cold path.

Algorithm 1 re-solves rolling TP-matrix windows for as long as the session
lives; the :class:`~repro.core.engine.DecompositionEngine` seeds each solve
from the previous window's solution. The benchmark replays the same rolling
window sequence warm and cold and records wall time; the accompanying
assertions pin the actual point of the feature — fewer solver iterations on
every re-solve.
"""

import pytest

from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.core.engine import DecompositionEngine
from repro.observability import Instrumentation

MB = 1024 * 1024
WINDOWS = [(0, 10), (2, 12), (4, 14), (6, 16), (8, 18)]


@pytest.fixture(scope="module")
def trace_32():
    return generate_trace(TraceConfig(n_machines=32, n_snapshots=20), seed=32)


def _replay(trace, solver, warm_start):
    instr = Instrumentation("bench")
    eng = DecompositionEngine(
        trace, nbytes=8 * MB, solver=solver, warm_start=warm_start,
        instrumentation=instr,
    )
    for start, stop in WINDOWS:
        eng.solve(eng.window(start, stop))
    return instr


@pytest.mark.parametrize("solver", ["apg", "ialm"])
@pytest.mark.parametrize("warm", [True, False], ids=["warm", "cold"])
def test_rolling_recalibration_runtime(benchmark, trace_32, solver, warm):
    instr = benchmark(_replay, trace_32, solver, warm)
    assert instr.solves == len(WINDOWS)
    assert instr.warm_solves == (len(WINDOWS) - 1 if warm else 0)


@pytest.mark.parametrize("solver", ["apg", "ialm"])
def test_warm_replay_iterates_less(trace_32, solver):
    warm = _replay(trace_32, solver, True)
    cold = _replay(trace_32, solver, False)
    assert warm.solve_iterations < cold.solve_iterations
    # Every re-solve (not just the total) should be no worse than cold.
    for w, c in zip(warm.spans[1:], cold.spans[1:]):
        assert w.iterations <= c.iterations
