"""Fig 11 — detailed study at ``Norm(N_E) = 0.2``.

The same three-application comparison as Fig 7, but on the trace noised to a
more dynamic regime than real EC2. Paper shape: RPCA still wins — 20–28%
over Baseline and 12–20% over Heuristics — but by less than at 0.1, and the
broadcast CDF separates the arms the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cloudsim.noise import inject_noise_to_target
from ..cloudsim.trace import CalibrationTrace
from ..utils.seeding import derive_seed
from .fig07_overall_ec2 import Fig07Result
from .fig07_overall_ec2 import run as run_fig07

__all__ = ["Fig11Result", "run"]


@dataclass(frozen=True)
class Fig11Result:
    """Fig 7-style comparison at the noised Norm(N_E) level."""

    comparison: Fig07Result
    achieved_norm_ne: float


def run(
    trace: CalibrationTrace,
    *,
    target_norm_ne: float = 0.2,
    time_step: int = 10,
    nbytes: float = 8.0 * 1024 * 1024,
    repetitions: int = 100,
    solver: str = "apg",
    seed: int = 0,
) -> Fig11Result:
    """Noise the trace to the target level and re-run the Fig 7 comparison."""
    noised, achieved = inject_noise_to_target(
        trace, target_norm_ne, nbytes=nbytes, seed=derive_seed(seed, "noise")
    )
    comparison = run_fig07(
        noised,
        time_step=time_step,
        nbytes=nbytes,
        repetitions=repetitions,
        solver=solver,
        seed=derive_seed(seed, "cmp"),
    )
    return Fig11Result(comparison=comparison, achieved_norm_ne=achieved)
