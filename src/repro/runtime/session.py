"""The Algorithm-1 session over a replayed trace.

A :class:`TraceSession` walks a :class:`~repro.cloudsim.trace.CalibrationTrace`
forward in time. The first ``time_step`` snapshots are consumed as the
initial calibration; every subsequent operation is priced on the *live*
snapshot at the session's cursor while its tree/mapping is built from the
*current constant component*. After each operation the session compares the
expected time against the observed one and re-calibrates (from the trailing
window, charging the calibration overhead) when the relative deviation
crosses the threshold — exactly lines 4–9 of the paper's Algorithm 1.

Calibration goes through a :class:`~repro.core.engine.DecompositionEngine`:
TP-matrix rows are cached across overlapping windows and re-calibration
solves warm-start from the previous solution (pass ``warm_start=False`` for
the historical cold path). The engine's instrumentation — per-solve spans,
warm/cold and cache counters — is exposed as
:attr:`TraceSession.instrumentation`.

Two orthogonal hardening layers ride on the loop:

* **Crash safety** (``persistence=``): every operation is committed to a
  write-ahead journal *before* it executes and a full checkpoint of session
  state is written every ``checkpoint_every`` operations, so a SIGKILLed
  process resumes via :meth:`TraceSession.resume` — newest valid checkpoint
  plus deterministic re-execution of the journal tail — and converges to
  the same ``P_D`` as an uninterrupted run.
* **Regime detection** (``regime=``): a CUSUM change-point detector over
  per-snapshot residual norms distinguishes transient interference spikes
  (keep serving ``P_D`` — RPCA's sparse term absorbs them) from sustained
  regime shifts, which force a *cold* re-calibration that drops the
  warm-start chain.

The same class serves live substrates by first materializing their
measurements as a trace (see
:func:`~repro.experiments.netsim_support.calibrate_netsim_trace`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .._validation import check_nonnegative, check_positive
from ..calibration.overhead import calibration_overhead_seconds
from ..cloudsim.trace import CalibrationTrace
from ..collectives.exec_model import collective_time, weights_to_alphabeta
from ..collectives.fnf import fnf_tree
from ..core.decompose import Decomposition
from ..core.engine import DecompositionEngine
from ..core.detectors import (
    DEFAULT_DETECTOR,
    CusumRegimeDetector,
    RegimeConfig,
    RegimeDetector,
    RegimeVerdict,
    build_detector,
)
from ..core.maintenance import (
    DegradedModeController,
    HealthState,
    HealthTransition,
    MaintenanceController,
    MaintenanceDecision,
    ResilienceConfig,
)
from ..core.solvers import solver_spec
from ..core.streaming import stream_state_from_payload, validate_mode
from ..errors import (
    CalibrationError,
    ConvergenceError,
    PersistenceError,
    ValidationError,
)
from ..faults import (
    CrashFault,
    FaultModel,
    FaultSchedule,
    inject_faults,
    parse_fault_spec,
)
from ..mapping.evaluate import bandwidth_from_weights, mapping_total_time
from ..mapping.greedy import greedy_mapping
from ..mapping.taskgraph import TaskGraph
from ..observability import Instrumentation
from ..utils.seeding import spawn_rng
from ..persistence import (
    CheckpointStore,
    PersistenceConfig,
    SnapshotJournal,
    capture_session_state,
    decomposition_from_state,
    engine_cache_from_state,
    history_rows_from_state,
    journal_path,
    recover,
    trace_sha256,
)

__all__ = [
    "OperationRecord",
    "OperationSpec",
    "SessionCapsule",
    "SessionStats",
    "TraceSession",
]


@dataclass(frozen=True, slots=True)
class OperationRecord:
    """One operation executed through the session."""

    op: str
    snapshot: int
    root: int
    elapsed: float
    expected: float
    decision: MaintenanceDecision
    health: str = HealthState.HEALTHY.value
    regime: str = RegimeVerdict.STABLE.value


@dataclass(frozen=True, slots=True)
class OperationSpec:
    """One operation an *external* driver asks a session to execute.

    The session's own methods (:meth:`TraceSession.broadcast`, ...) bundle
    deciding *what* to run with running it; a spec separates the two so a
    scheduler that owns the loop — the fleet scheduler ticking many
    sessions — can plan operations ahead of time, ship them across process
    boundaries (the dataclass is picklable) and feed them to
    :meth:`TraceSession.step` one batch at a time.
    """

    op: str = "broadcast"
    root: int = 0
    nbytes: float | None = None


@dataclass(frozen=True, slots=True)
class SessionCapsule:
    """Full session state as a picklable value (no files involved).

    The in-memory sibling of a checkpoint: the same ``(arrays, meta)``
    payload :func:`~repro.persistence.capture_session_state` produces,
    kept as plain numpy arrays + JSON-able metadata instead of being
    written to disk. It round-trips losslessly through ``pickle``, so a
    session can be suspended in one process and resumed bit-identically in
    another via :meth:`TraceSession.from_capsule` — the contract the fleet
    scheduler uses to migrate clusters between workers. A capsule is also
    directly writable as a checkpoint
    (:meth:`~repro.persistence.CheckpointStore.save` accepts its fields).
    """

    arrays: dict[str, np.ndarray]
    meta: dict[str, Any]

    @property
    def operations(self) -> int:
        """Operations the captured session had executed."""
        return int(self.meta["stats"]["operations"])

    @property
    def constant_row(self) -> np.ndarray:
        """The captured constant component ``P_D`` (representative row)."""
        return self.arrays["dec_row"]

    @property
    def norm_ne(self) -> float:
        """Captured ``Norm(N_E)``."""
        return float(self.meta["decomposition"]["report"]["norm_ne"])

    @property
    def verdict(self) -> str:
        """Captured stability verdict."""
        return str(self.meta["decomposition"]["report"]["verdict"])


@dataclass
class SessionStats:
    """Aggregate accounting of a session's lifetime.

    ``epochs`` counts how many times the replay cursor wrapped past the end
    of the trace back to the evaluation-window start — i.e. how many times
    the finite trace was reused. Long-running replays report it so "1000
    operations" can be read as "the 20-snapshot trace replayed 50 times"
    rather than mistaken for 1000 fresh measurements.
    """

    operations: int = 0
    communication_seconds: float = 0.0
    overhead_seconds: float = 0.0
    recalibrations: int = 0
    failed_recalibrations: int = 0
    deferred_recalibrations: int = 0
    holdover_operations: int = 0
    epochs: int = 0
    regime_shifts: int = 0
    regime_spikes: int = 0
    stream_updates: int = 0
    stream_fallbacks: int = 0
    history: list[OperationRecord] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.communication_seconds + self.overhead_seconds

    @property
    def average_total_seconds(self) -> float:
        return self.total_seconds / self.operations if self.operations else 0.0


class TraceSession:
    """Adaptive network-aware optimization over a replayed trace.

    Parameters
    ----------
    trace:
        The network ground truth, walked forward one snapshot per operation
        (wrapping around at the end).
    nbytes:
        Default message size for calibration weights and collectives.
    time_step:
        Calibration window length (paper default 10).
    threshold:
        Maintenance threshold (paper default 1.0).
    consecutive:
        Consecutive above-threshold observations required before a
        re-calibration fires (default 1, the paper's immediate rule).
        Use 2 to debounce one-off interference spikes when individual
        observations are single collectives rather than whole runs.
    solver:
        RPCA backend.
    calibration_cost:
        Seconds charged per (re-)calibration; defaults to the Fig-4 model.
    warm_start:
        Warm-start re-calibration solves from the previous window's solution
        (default on; only solvers that support it — APG/IALM — are affected).
        Disable to reproduce the historical cold-solve path bit for bit.
    svd_backend:
        SVD kernel for the solver's singular value thresholding — one of
        :data:`repro.core.kernels.SVD_BACKENDS` (default ``"exact"``, the
        historical bit-identical path). Forwarded to the session's
        :class:`~repro.core.engine.DecompositionEngine`, which keeps the
        adaptive rank-prediction state across re-calibrations.
    elementwise_backend:
        Elementwise kernel for the solver's step recurrences — one of
        :data:`repro.core.elementwise.EW_BACKENDS` (default ``"reference"``,
        the historical ufunc chain). Anything else requires a non-``exact``
        *svd_backend* and an SVT-based solver; ``"jit"`` additionally
        requires numba. Forwarded to the engine alongside *svd_backend*.
    mode:
        ``"batch"`` (default) — the historical Algorithm-1 loop: full
        window re-solves when the maintenance controller fires.
        ``"streaming"`` — the session is a true streaming consumer: every
        operation folds its snapshot into the decomposition in O(row) via
        the engine's :class:`~repro.core.streaming.StreamingDecomposer`
        (no calibration overhead charged), and only regime SHIFTs, rank
        growth past the predictor's bound, drift past ``stream_tolerance``
        or masked snapshots fall back to a certified cold batch solve.
    stream_tolerance:
        Streaming drift ceiling (``mode="streaming"`` only); defaults to
        :class:`~repro.core.streaming.StreamingConfig`'s.
    stream_refresh_every:
        Streaming re-orthonormalization cadence in folds
        (``mode="streaming"`` only).
    instrumentation:
        Observability sink shared with the session's
        :class:`~repro.core.engine.DecompositionEngine`; a fresh one is
        created if omitted (read it back via :attr:`instrumentation`).
    faults:
        Fault models to inject into the *calibration view* of the trace — a
        list of :class:`~repro.faults.FaultModel` or a spec string for
        :func:`~repro.faults.parse_fault_spec` (e.g.
        ``"probe_loss=0.1,vm_outage=3:12:2"`` or ``"harsh"``). Faults only
        affect what calibration observes; operations are still priced on
        the ground-truth trace (a lost probe does not slow the network).
        Enables degraded-mode maintenance (see *resilience*).
        :class:`~repro.faults.CrashFault` models in the list arm a
        process-level SIGKILL instead of touching measurements.
    fault_seed:
        Seed for fault materialization. Drawn fresh (and remembered, so a
        resumed session reproduces the identical fault schedule) when
        omitted and faults are present.
    resilience:
        :class:`~repro.core.maintenance.ResilienceConfig` controlling
        snapshot-completeness thresholds, re-calibration backoff and the
        HEALTHY → DEGRADED → HOLDOVER health machine. Defaults to the
        standard config when measurement *faults* are given, ``None``
        (strict historical behavior: calibration failures propagate)
        otherwise.
    persistence:
        A :class:`~repro.persistence.PersistenceConfig` (or a bare
        directory) enabling crash safety: operations are write-ahead
        journaled and checkpoints are written every
        ``checkpoint_every`` operations. The directory must not already
        hold another session's state — use :meth:`resume` for that.
    regime:
        Enable online regime-shift detection: the name of a registered
        detector (see :func:`repro.core.detectors.detector_names` —
        ``"cusum"``, ``"signature"``, ``"noise-robust"``, ``"drift"``),
        ``True`` for the default CUSUM detector, or a
        :class:`~repro.core.detectors.RegimeConfig` (the historical CUSUM
        spelling). A detected SHIFT forces a cold re-calibration
        (warm-start chain dropped, backoff bypassed); SPIKEs are counted
        but keep ``P_D`` in service.
    regime_params:
        Config overrides for the named detector (keyword arguments of its
        config dataclass, e.g. ``{"decision": 6.0}``). Requires *regime*.
    crash_after:
        Arm a :class:`~repro.faults.CrashFault` at this operation index —
        shorthand for putting one in *faults*, used by the chaos harness.
    """

    def __init__(
        self,
        trace: CalibrationTrace,
        *,
        nbytes: float = 8.0 * 1024 * 1024,
        time_step: int = 10,
        threshold: float = 1.0,
        consecutive: int = 1,
        solver: str = "apg",
        calibration_cost: float | None = None,
        warm_start: bool = True,
        svd_backend: str = "exact",
        elementwise_backend: str = "reference",
        mode: str = "batch",
        stream_tolerance: float | None = None,
        stream_refresh_every: int | None = None,
        instrumentation: Instrumentation | None = None,
        faults: list[FaultModel] | tuple[FaultModel, ...] | str | None = None,
        fault_seed: int | None = None,
        resilience: ResilienceConfig | None = None,
        persistence: PersistenceConfig | str | os.PathLike | None = None,
        regime: RegimeConfig | str | bool | None = None,
        regime_params: dict[str, Any] | None = None,
        crash_after: int | None = None,
    ) -> None:
        if trace.n_snapshots <= time_step:
            raise ValidationError(
                "trace too short: need more snapshots than the time step"
            )
        check_positive(nbytes, "nbytes")
        self.trace = trace
        self.nbytes = float(nbytes)
        self.time_step = int(time_step)
        self.solver = solver
        self.svd_backend = svd_backend
        self.elementwise_backend = elementwise_backend
        self.mode = validate_mode(mode)
        self.controller = MaintenanceController(
            threshold=threshold, consecutive=consecutive
        )
        self.calibration_cost = (
            calibration_cost
            if calibration_cost is not None
            else calibration_overhead_seconds(trace.n_machines, time_step)
        )
        check_nonnegative(self.calibration_cost, "calibration_cost")

        # Fault view. The seed is resolved (and remembered) here so a
        # resumed session re-materializes the identical schedule.
        self.faults_spec = faults if isinstance(faults, str) else None
        if faults is not None and fault_seed is None:
            fault_seed = int(spawn_rng(None).integers(0, 2**31 - 1))
        self.fault_seed = None if fault_seed is None else int(fault_seed)
        calibration_view, self.fault_schedule, crash_models = (
            self._build_fault_view(trace, faults, self.fault_seed)
        )
        if crash_after is not None:
            crash_models = crash_models + (CrashFault(at_operation=crash_after),)
        self._crash_models = crash_models
        if self.fault_schedule is not None and resilience is None:
            resilience = ResilienceConfig()
        self.resilience = resilience
        self.health: DegradedModeController | None = (
            DegradedModeController(resilience) if resilience is not None else None
        )

        self._engine = DecompositionEngine(
            calibration_view,
            nbytes=self.nbytes,
            time_step=self.time_step,
            solver=solver,
            warm_start=warm_start,
            svd_backend=svd_backend,
            elementwise_backend=elementwise_backend,
            mode=self.mode,
            stream_tolerance=stream_tolerance,
            stream_refresh_every=stream_refresh_every,
            instrumentation=(
                instrumentation
                if instrumentation is not None
                else Instrumentation("session")
            ),
            **self._engine_kwargs(resilience, solver),
        )
        self.regime_detector: RegimeDetector | None = (
            self._build_regime_detector(regime, regime_params)
        )

        self.stats = SessionStats()
        self._trace_sha = trace_sha256(trace)  # hashed once, reused per checkpoint
        self._cursor = self.time_step  # next live snapshot
        self._decomposition: Decomposition | None = None
        self._replaying = False
        self._journal: SnapshotJournal | None = None
        self._store: CheckpointStore | None = None
        # The session cannot start without one good constant component, so
        # the initial calibration is not fault-tolerant: a failure here
        # propagates even in resilient mode (pick fault schedules, window
        # position or thresholds that let the session boot).
        self._calibrate(end=self.time_step, charge=True)
        if self.health is not None:
            self.health.record_success()

        self.persistence = self._coerce_persistence(persistence)
        if self.persistence is not None:
            self._attach_persistence(self.persistence, fresh=True)
            self.checkpoint()  # checkpoint 0: the booted state

    # -- construction helpers ----------------------------------------------
    @staticmethod
    def _build_regime_detector(
        regime: RegimeConfig | str | bool | None,
        params: dict[str, Any] | None,
    ) -> RegimeDetector | None:
        """Resolve the ``regime=`` argument against the detector registry.

        ``None``/``False`` disable detection; ``True`` is the default
        detector; a string is a registered name (built with *params*); a
        :class:`~repro.core.detectors.RegimeConfig` is the historical CUSUM
        spelling (mutually exclusive with *params* — the config already
        carries them).
        """
        if regime is None or regime is False:
            if params:
                raise ValidationError(
                    "regime_params given without a regime detector; "
                    "pass regime=<detector name> as well"
                )
            return None
        if isinstance(regime, RegimeConfig):
            if params:
                raise ValidationError(
                    "pass detector parameters either as a RegimeConfig or "
                    "as regime_params, not both"
                )
            return CusumRegimeDetector(regime)
        if regime is True:
            return build_detector(DEFAULT_DETECTOR, params)
        if isinstance(regime, str):
            return build_detector(regime, params)
        raise ValidationError(
            f"regime must be a detector name, True, or a RegimeConfig; "
            f"got {regime!r}"
        )

    @staticmethod
    def _coerce_persistence(
        persistence: PersistenceConfig | str | os.PathLike | None,
    ) -> PersistenceConfig | None:
        if persistence is None or isinstance(persistence, PersistenceConfig):
            return persistence
        return PersistenceConfig(directory=os.fspath(persistence))

    @staticmethod
    def _build_fault_view(
        trace: CalibrationTrace,
        faults: list[FaultModel] | tuple[FaultModel, ...] | str | None,
        seed: int | None,
    ) -> tuple[CalibrationTrace, FaultSchedule | None, tuple[CrashFault, ...]]:
        """Split fault models into the measurement plane and the crash plane.

        Crash models are filtered out *before* injection so a spec with and
        without ``crash=`` tokens yields bit-identical measurement
        schedules — the property the kill-and-recover parity check rests on.
        """
        if faults is None:
            return trace, None, ()
        models = parse_fault_spec(faults) if isinstance(faults, str) else list(faults)
        crash = tuple(m for m in models if isinstance(m, CrashFault))
        measurement = [m for m in models if not isinstance(m, CrashFault)]
        if not measurement:
            return trace, None, crash
        injected = inject_faults(trace, measurement, seed=seed)
        return injected.trace, injected.schedule, crash

    @staticmethod
    def _engine_kwargs(
        resilience: ResilienceConfig | None, solver: str
    ) -> dict[str, Any]:
        kwargs: dict[str, Any] = {}
        if resilience is not None:
            kwargs["min_snapshot_observed"] = resilience.min_snapshot_observed
            kwargs["min_window_observed"] = resilience.min_window_observed
            spec = solver_spec(solver)
            if resilience.strict_convergence and (
                spec.accepts_any_kwargs or "raise_on_fail" in spec.accepted_kwargs
            ):
                kwargs["raise_on_fail"] = True
        return kwargs

    def _attach_persistence(self, config: PersistenceConfig, *, fresh: bool) -> None:
        directory = os.fspath(config.directory)
        os.makedirs(directory, exist_ok=True)
        store = CheckpointStore(
            directory, keep=config.keep_checkpoints, fsync=config.fsync
        )
        jpath = journal_path(directory)
        if fresh:
            # An empty (header-only) journal is not prior state — a fresh
            # session may have died between creating it and checkpoint 0.
            occupied = bool(store._paths()) or (
                os.path.exists(jpath) and SnapshotJournal.scan(jpath).records
            )
            if occupied:
                raise PersistenceError(
                    f"{directory!r} already holds session state; "
                    "use TraceSession.resume() to continue it"
                )
        self._store = store
        self._journal = SnapshotJournal(jpath, fsync=config.fsync)

    # -- state ------------------------------------------------------------
    @property
    def decomposition(self) -> Decomposition:
        assert self._decomposition is not None
        return self._decomposition

    @property
    def norm_ne(self) -> float:
        """Current ``Norm(N_E)`` — the effectiveness predictor."""
        return self.decomposition.norm_ne

    @property
    def verdict(self) -> str:
        return self.decomposition.report.verdict

    def weight_matrix(self) -> np.ndarray:
        """The current constant-component weight matrix."""
        return self.decomposition.performance_matrix().weights.copy()

    @property
    def instrumentation(self) -> Instrumentation:
        """Counters/timers/solve spans of this session's engine."""
        return self._engine.instrumentation

    @property
    def health_state(self) -> HealthState:
        """Current calibration-plane health (HEALTHY without resilience)."""
        return self.health.state if self.health is not None else HealthState.HEALTHY

    @property
    def health_transitions(self) -> list[HealthTransition]:
        """Recorded health state machine edges (empty without resilience)."""
        return list(self.health.transitions) if self.health is not None else []

    @property
    def staleness(self) -> int:
        """Operations run on the current constant component since its solve."""
        return self.health.staleness if self.health is not None else 0

    @property
    def fault_events(self):
        """Materialized fault events, if faults were injected."""
        return self.fault_schedule.events if self.fault_schedule is not None else ()

    # -- persistence --------------------------------------------------------
    def checkpoint(self) -> str | None:
        """Write a full checkpoint now; returns its path (None if disabled)."""
        if self._store is None:
            return None
        arrays, meta = capture_session_state(self)
        path = self._store.save(arrays, meta)
        self.instrumentation.count("session.checkpoint.written")
        return path

    def close(self) -> None:
        """Flush and release persistence resources (idempotent)."""
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    def _commit(self, record: dict[str, Any]) -> None:
        """Write-ahead commit of one operation (no-op when not persisting).

        The append happens *before* the operation executes, so after a crash
        the operation either replays in full from the journal or never
        happened — the recovery protocol's atomicity unit.
        """
        if self._journal is not None and not self._replaying:
            self._journal.append_json(record)

    def _check_crash(self) -> None:
        """Fire any armed crash fault scheduled for the upcoming operation.

        Checked after the journal commit and before execution: the record of
        the operation the process died inside is on disk and will replay on
        recovery. Suppressed during replay — a crash is a process-lifetime
        event, not part of the deterministic history.
        """
        if self._replaying:
            return
        for model in self._crash_models:
            if model.fires(self.stats.operations):
                model.trigger()

    def _maybe_checkpoint(self) -> None:
        if self._store is None or self._replaying or self.persistence is None:
            return
        if self.stats.operations % int(self.persistence.checkpoint_every) == 0:
            self.checkpoint()

    # -- internals ----------------------------------------------------------
    def _calibrate(self, end: int, *, charge: bool) -> None:
        self._decomposition = self._engine.calibrate(end)
        if charge:
            self.stats.overhead_seconds += self.calibration_cost

    def _request_recalibration(self, end: int) -> None:
        """Algorithm-1 re-calibration, degraded-mode aware.

        Without a health controller this is the historical strict path: a
        calibration failure propagates to the caller. With one, a failed
        attempt (not enough probes answered, solver budget exhausted) keeps
        the last good constant component in service — HOLDOVER — and backs
        off exponentially before the next attempt; a deferred request
        (still inside backoff) is counted but does not re-measure.
        """
        if self.health is None:
            self._calibrate(end=end, charge=True)
            self.stats.recalibrations += 1
            return
        if not self.health.should_attempt():
            self.stats.deferred_recalibrations += 1
            self.instrumentation.count("session.recalibration.deferred")
            return
        try:
            self._calibrate(end=end, charge=True)
        except (CalibrationError, ConvergenceError) as exc:
            self.stats.failed_recalibrations += 1
            self.instrumentation.count("session.recalibration.failed")
            self.health.record_failure(exc)
            # The engine may have been left warm-seeded by a failed solve's
            # predecessor; the last *good* decomposition stays in service.
            return
        self.stats.recalibrations += 1
        self.instrumentation.count("session.recalibration.ok")
        self.health.record_success()

    def _force_cold_recalibration(self, end: int) -> None:
        """Regime shift: the constant component itself has moved.

        Drop the warm-start chain (the old solution would pull the solver
        toward the dead regime) and re-solve cold, bypassing retry backoff —
        holding over a stale ``P_D`` is exactly wrong when the change is
        structural rather than a measurement fault.
        """
        self._engine.reset_warm_state()
        self.controller.reset()
        if self.mode == "streaming":
            # A SHIFT is a certified-fallback trigger: the reset above
            # dropped the streaming subspace and the cold solve below
            # reseeds it.
            self.stats.stream_fallbacks += 1
            self.instrumentation.count("kernel.stream.fallbacks")
            self.instrumentation.count("kernel.stream.fallback_shift")
        self.instrumentation.count("session.regime.cold_recalibration")
        # Unprefixed twin of the counter above: fleet reports merge worker
        # instrumentation under the "regime.*" namespace.
        self.instrumentation.count("regime.forced_recalibrations")
        try:
            self._calibrate(end=end, charge=True)
        except (CalibrationError, ConvergenceError) as exc:
            self.stats.failed_recalibrations += 1
            self.instrumentation.count("session.recalibration.failed")
            if self.health is None:
                raise
            self.health.record_failure(exc)
            return
        self.stats.recalibrations += 1
        self.instrumentation.count("session.recalibration.ok")
        if self.health is not None:
            self.health.record_success()

    def _observe_regime(self, k: int) -> str:
        """Feed snapshot *k*'s residual to the detector; act on the verdict.

        Must run before any re-calibration at this operation: the residual
        is measured against the constant component *in service*, and a SHIFT
        pre-empts the ordinary threshold-triggered re-calibration (the cold
        path subsumes it).
        """
        if self.regime_detector is None:
            return RegimeVerdict.STABLE.value
        residual = self._engine.snapshot_residual(k)
        verdict = self.regime_detector.observe(residual)
        if verdict is RegimeVerdict.SHIFT:
            self.stats.regime_shifts += 1
            self.instrumentation.count("session.regime.shift")
            self.instrumentation.count("regime.shift")
            self._force_cold_recalibration(end=k + 1)
        elif verdict is RegimeVerdict.SPIKE:
            self.stats.regime_spikes += 1
            self.instrumentation.count("session.regime.spike")
            self.instrumentation.count("regime.spike")
        return verdict.value

    def _consume_stream(self, k: int) -> None:
        """Serve operation *k*'s window slide through the streaming path.

        A successful fold replaces the decomposition in service at O(row)
        cost — no calibration overhead is charged, that is the point of the
        streaming mode. A fold fallback (rank growth, drift, masked row),
        or any slide the streaming state cannot cover (unseeded stream,
        trace wraparound), routes through the ordinary re-calibration
        machinery: overhead charged, health/backoff respected, and the cold
        solve reseeds the stream.
        """
        end = k + 1
        if self._engine.stream_plan(end) == "fold":
            dec, _reason = self._engine.stream_fold(end)
            if dec is not None:
                self._decomposition = dec
                self.stats.stream_updates += 1
                return
            self.stats.stream_fallbacks += 1
        self._request_recalibration(end=end)

    def _advance(self) -> int:
        k = self._cursor
        self._cursor += 1
        if self._cursor >= self.trace.n_snapshots:
            self._cursor = self.time_step  # wrap the evaluation window
            self.stats.epochs += 1
        if self.health is not None:
            self.health.tick()
            if not self.health.healthy:
                self.stats.holdover_operations += 1
        return k

    # -- operations -----------------------------------------------------------
    def run_collective(
        self,
        op: str,
        *,
        root: int = 0,
        nbytes: float | None = None,
        machines: list[int] | np.ndarray | None = None,
    ) -> OperationRecord:
        """Run one collective; returns its record after maintenance feedback.

        *machines* restricts the operation to a virtual sub-cluster
        ``C' ⊆ C`` (paper Algorithm 1 line 3): the constant component and
        the live snapshot are both restricted to those machines, and *root*
        indexes into the sub-cluster.
        """
        size = self.nbytes if nbytes is None else float(nbytes)
        check_positive(size, "nbytes")
        idx: np.ndarray | None = None
        if machines is not None:
            idx = np.asarray(machines, dtype=np.intp)
            if idx.size < 2 or len(set(idx.tolist())) != idx.size:
                raise ValidationError("machines must be >= 2 distinct indices")
            if idx.min() < 0 or idx.max() >= self.trace.n_machines:
                raise ValidationError("machine index out of range")
        self._commit(
            {
                "kind": "collective",
                "op": op,
                "root": int(root),
                "nbytes": size,
                "machines": None if idx is None else idx.tolist(),
            }
        )
        self._check_crash()
        k = self._advance()
        weights = self.weight_matrix()
        live_alpha, live_beta = self.trace.alpha[k], self.trace.beta[k]
        if idx is not None:
            sel = np.ix_(idx, idx)
            weights = weights[sel]
            np.fill_diagonal(weights, 0.0)
            live_alpha = live_alpha[sel]
            live_beta = live_beta[sel]
        tree = fnf_tree(weights, root)
        ea, eb = weights_to_alphabeta(weights, size)
        expected = collective_time(op, tree, ea, eb, size)
        elapsed = collective_time(op, tree, live_alpha, live_beta, size)

        decision = self.controller.observe(expected, elapsed)
        regime = self._observe_regime(k)
        if self.mode == "streaming":
            # A SHIFT already forced the cold reseed inside _observe_regime.
            if regime != RegimeVerdict.SHIFT.value:
                self._consume_stream(k)
        elif (
            regime != RegimeVerdict.SHIFT.value
            and decision is MaintenanceDecision.RECALIBRATE
        ):
            self._request_recalibration(end=k + 1)

        record = OperationRecord(
            op=op, snapshot=k, root=int(root), elapsed=elapsed,
            expected=expected, decision=decision,
            health=self.health_state.value, regime=regime,
        )
        self.stats.operations += 1
        self.stats.communication_seconds += elapsed
        self.stats.history.append(record)
        self._maybe_checkpoint()
        return record

    def step(self, spec: OperationSpec | None = None) -> OperationRecord:
        """Execute one externally-planned operation (non-owning driver mode).

        The inversion of the session's usual control flow: the caller — a
        fleet scheduler, a replay harness — owns the loop and feeds specs;
        the session only executes and maintains. Equivalent to calling
        :meth:`run_collective` with the spec's fields.
        """
        spec = spec if spec is not None else OperationSpec()
        return self.run_collective(spec.op, root=spec.root, nbytes=spec.nbytes)

    def broadcast(self, *, root: int = 0, nbytes: float | None = None) -> OperationRecord:
        return self.run_collective("broadcast", root=root, nbytes=nbytes)

    def scatter(self, *, root: int = 0, block_bytes: float | None = None) -> OperationRecord:
        return self.run_collective("scatter", root=root, nbytes=block_bytes)

    def reduce(self, *, root: int = 0, nbytes: float | None = None) -> OperationRecord:
        return self.run_collective("reduce", root=root, nbytes=nbytes)

    def gather(self, *, root: int = 0, block_bytes: float | None = None) -> OperationRecord:
        return self.run_collective("gather", root=root, nbytes=block_bytes)

    def communicator(self, snapshot: int | None = None):
        """An MPI-style :class:`~repro.mpisim.SimComm` bound to this session.

        The communicator's live network is the trace snapshot at the
        session's cursor (or *snapshot* if given) and its trees come from
        the current constant component — i.e. programs written against it
        run network-aware without knowing about RPCA at all. The
        communicator is a snapshot view: it does not advance the session's
        cursor or feed the maintenance loop.
        """
        from ..mpisim.comm import SimComm

        k = self._cursor if snapshot is None else int(snapshot)
        if not 0 <= k < self.trace.n_snapshots:
            raise ValidationError(f"snapshot {k} out of range")
        return SimComm(
            self.trace.alpha[k], self.trace.beta[k], weights=self.weight_matrix()
        )

    def map_tasks(self, graph: TaskGraph) -> tuple[np.ndarray, float]:
        """Map *graph* greedily on the constant component; price it live.

        Returns ``(mapping, elapsed_seconds)``. Mapping operations also feed
        the maintenance loop (their expected cost comes from the estimate).
        """
        if graph.n_tasks > self.trace.n_machines:
            raise ValidationError("task graph larger than the cluster")
        self._commit({"kind": "mapping", "volumes": graph.volumes.tolist()})
        self._check_crash()
        k = self._advance()
        weights = self.weight_matrix()
        mapping = greedy_mapping(graph, bandwidth_from_weights(weights))
        ea, eb = weights_to_alphabeta(weights, self.nbytes)
        expected = mapping_total_time(graph, mapping, ea, eb)
        elapsed = mapping_total_time(
            graph, mapping, self.trace.alpha[k], self.trace.beta[k]
        )
        decision = self.controller.observe(expected, elapsed)
        regime = self._observe_regime(k)
        if self.mode == "streaming":
            if regime != RegimeVerdict.SHIFT.value:
                self._consume_stream(k)
        elif (
            regime != RegimeVerdict.SHIFT.value
            and decision is MaintenanceDecision.RECALIBRATE
        ):
            self._request_recalibration(end=k + 1)
        self.stats.operations += 1
        self.stats.communication_seconds += elapsed
        self.stats.history.append(
            OperationRecord(
                op="mapping", snapshot=k, root=-1, elapsed=elapsed,
                expected=expected, decision=decision,
                health=self.health_state.value, regime=regime,
            )
        )
        self._maybe_checkpoint()
        return mapping, elapsed

    # -- suspension (in-memory) ---------------------------------------------
    def capture_capsule(self) -> SessionCapsule:
        """Capture full session state as a picklable :class:`SessionCapsule`."""
        arrays, meta = capture_session_state(self)
        return SessionCapsule(arrays=arrays, meta=meta)

    @classmethod
    def from_capsule(
        cls,
        trace: CalibrationTrace,
        capsule: SessionCapsule,
        *,
        instrumentation: Instrumentation | None = None,
        faults: list[FaultModel] | tuple[FaultModel, ...] | str | None = None,
        verify_trace: bool = False,
    ) -> "TraceSession":
        """Resurrect a session from an in-memory capsule (no files, no replay).

        The process-migration counterpart of :meth:`resume`: state comes
        from a :class:`SessionCapsule` instead of a checkpoint directory and
        there is no journal tail to re-execute, so the rebuilt session is
        *exactly* the captured one — same cursor, same ``P_D``, same
        warm-start seed — and continues bit-identically. *trace* must be
        the same trace the captured session ran on (e.g. a shared-memory
        view of it); pass ``verify_trace=True`` to check its content hash
        against the captured one instead of trusting the caller — off by
        default because hashing the whole trace on every fleet batch would
        dwarf the work being resumed.
        """
        if verify_trace and trace_sha256(trace) != capsule.meta["trace"]["sha256"]:
            raise PersistenceError(
                "trace content does not match the captured session "
                "(sha256 mismatch) — resuming on a different trace would "
                "silently diverge"
            )
        return cls._rebuild(
            trace,
            capsule.arrays,
            capsule.meta,
            instrumentation=instrumentation,
            faults=faults,
        )

    # -- recovery -----------------------------------------------------------
    def _replay_record(self, record: dict[str, Any]) -> None:
        kind = record.get("kind")
        if kind == "collective":
            self.run_collective(
                record["op"],
                root=int(record["root"]),
                nbytes=float(record["nbytes"]),
                machines=record["machines"],
            )
        elif kind == "mapping":
            self.map_tasks(
                TaskGraph(volumes=np.asarray(record["volumes"], dtype=np.float64))
            )
        else:
            raise PersistenceError(f"unknown journal record kind {kind!r}")

    @classmethod
    def resume(
        cls,
        directory: str | os.PathLike,
        *,
        trace: CalibrationTrace | None = None,
        faults: list[FaultModel] | tuple[FaultModel, ...] | str | None = None,
        instrumentation: Instrumentation | None = None,
        persistence: PersistenceConfig | None = None,
        crash_after: int | None = None,
    ) -> "TraceSession":
        """Resurrect a crashed (or cleanly stopped) session from *directory*.

        Loads the newest checkpoint that passes verification (falling back
        to older ones past corruption), restores the full session state —
        engine row cache, warm-start chain, controllers, detector, stats,
        instrumentation — and deterministically re-executes the journal
        records committed after the checkpoint. The resumed session then
        continues exactly where the dead one would have been: same cursor,
        same ``P_D``, same warm-start seed.

        Parameters
        ----------
        directory:
            The persistence directory of the dead session.
        trace:
            The ground-truth trace. Loaded from the path recorded in the
            checkpoint when omitted; either way its content hash must match
            the checkpointed one.
        faults:
            Measurement-fault override. Defaults to the fault spec string
            recorded in the checkpoint (sessions built from model *lists*
            record no spec and need this argument). Crash models recorded
            in the spec are never re-armed — a crash belongs to the process
            that scheduled it, not to the history.
        instrumentation:
            Sink to restore the checkpointed counters/spans into; a fresh
            one is created if omitted.
        persistence:
            Settings for the *resumed* session's own checkpointing
            (cadence, retention, fsync). The journal and checkpoints always
            stay in *directory* — recovery continuity depends on it.
        crash_after:
            Arm a fresh :class:`~repro.faults.CrashFault` at this operation
            index (counted over the whole session lifetime, replayed
            operations included) — the chaos harness's repeated-kill knob.
        """
        directory = os.fspath(directory)
        state = recover(directory)
        meta = state.meta
        cfg = meta["config"]

        if trace is None:
            path = meta["trace"]["path"]
            if path is None:
                raise PersistenceError(
                    "checkpoint records no trace path; pass trace= explicitly"
                )
            from ..cloudsim.io import load_trace, load_trace_csv

            trace = (
                load_trace_csv(path)
                if str(path).lower().endswith(".csv")
                else load_trace(path)
            )
        trace_sha = trace_sha256(trace)
        if trace_sha != meta["trace"]["sha256"]:
            raise PersistenceError(
                "trace content does not match the checkpointed session "
                "(sha256 mismatch) — resuming on a different trace would "
                "silently diverge"
            )

        self = cls._rebuild(
            trace, state.arrays, meta, instrumentation=instrumentation, faults=faults
        )

        if persistence is None:
            persistence = PersistenceConfig(
                directory=directory, trace_path=meta["trace"]["path"]
            )
        elif os.path.abspath(os.fspath(persistence.directory)) != os.path.abspath(
            directory
        ):
            raise PersistenceError(
                "a resumed session must keep persisting into the directory "
                "it recovered from"
            )
        self.persistence = persistence
        self._crash_models = (
            (CrashFault(at_operation=crash_after),) if crash_after is not None else ()
        )
        self._store = CheckpointStore(
            directory, keep=persistence.keep_checkpoints, fsync=persistence.fsync
        )
        self._journal = None  # replay first; reattach in append mode after

        self._replaying = True
        try:
            for record in state.pending:
                self._replay_record(record)
        finally:
            self._replaying = False
        self._journal = SnapshotJournal(
            journal_path(directory), fsync=persistence.fsync
        )
        if self._journal.seq != self.stats.operations:
            raise PersistenceError(
                f"journal/state divergence after replay: journal at seq "
                f"{self._journal.seq}, session at {self.stats.operations} "
                "operations"
            )
        self.instrumentation.count("session.recovered")
        if state.fallbacks:
            self.instrumentation.count(
                "session.recovery.fallbacks", state.fallbacks
            )
        return self

    @classmethod
    def _rebuild(
        cls,
        trace: CalibrationTrace,
        arrays: dict[str, np.ndarray],
        meta: dict[str, Any],
        *,
        instrumentation: Instrumentation | None = None,
        faults: list[FaultModel] | tuple[FaultModel, ...] | str | None = None,
    ) -> "TraceSession":
        """Rebuild a session object from captured state (arrays + meta).

        Shared by :meth:`resume` (state from a checkpoint file; the caller
        then attaches persistence and replays the journal tail) and
        :meth:`from_capsule` (state from an in-memory capsule; nothing else
        to do). The rebuilt session has no persistence attached and no
        crash models armed.
        """
        cfg = meta["config"]
        self = cls.__new__(cls)
        self.trace = trace
        self._trace_sha = meta["trace"]["sha256"]
        self.nbytes = float(cfg["nbytes"])
        self.time_step = int(cfg["time_step"])
        self.solver = cfg["solver"]
        # Checkpoints from releases before the kernel layer lack the key.
        self.svd_backend = cfg.get("svd_backend", "exact")
        # Checkpoints from before the elementwise layer lack this one too.
        self.elementwise_backend = cfg.get("elementwise_backend", "reference")
        # Pre-streaming checkpoints lack the mode and knob keys.
        self.mode = cfg.get("mode", "batch")
        stream_tolerance = cfg.get("stream_tolerance")
        stream_refresh_every = cfg.get("stream_refresh_every")
        self.calibration_cost = float(cfg["calibration_cost"])
        self.controller = MaintenanceController(
            threshold=cfg["threshold"], consecutive=cfg["consecutive"]
        )
        ctrl_state = dict(meta["controller"])
        ctrl_state["deviations"] = arrays["ctrl_deviations"].tolist()
        self.controller.restore_state(ctrl_state)

        res_meta = cfg["resilience"]
        resilience = None if res_meta is None else ResilienceConfig(**res_meta)
        self.resilience = resilience
        self.health = (
            DegradedModeController(resilience) if resilience is not None else None
        )
        if self.health is not None and meta["health"] is not None:
            self.health.restore_state(meta["health"])

        self.faults_spec = cfg["faults_spec"]
        self.fault_seed = cfg["fault_seed"]
        fault_source = faults if faults is not None else self.faults_spec
        calibration_view, self.fault_schedule, _ = self._build_fault_view(
            trace, fault_source, self.fault_seed
        )
        self._crash_models = ()

        self._engine = DecompositionEngine(
            calibration_view,
            nbytes=self.nbytes,
            time_step=self.time_step,
            solver=self.solver,
            warm_start=bool(cfg["warm_start"]),
            svd_backend=self.svd_backend,
            elementwise_backend=self.elementwise_backend,
            mode=self.mode,
            stream_tolerance=stream_tolerance,
            stream_refresh_every=stream_refresh_every,
            instrumentation=(
                instrumentation
                if instrumentation is not None
                else Instrumentation("session")
            ),
            **self._engine_kwargs(resilience, self.solver),
        )
        self._engine.import_cache(engine_cache_from_state(arrays))
        self._engine.instrumentation.restore_state(meta["instrumentation"])
        dec = decomposition_from_state(arrays, meta["decomposition"])
        self._decomposition = dec
        self._engine.restore_warm_state(dec)
        stream_meta = meta.get("stream")
        if stream_meta is not None:
            self._engine.import_stream_state(
                stream_state_from_payload(arrays, stream_meta)
            )

        regime_cfg = cfg["regime"]
        if regime_cfg is None:
            self.regime_detector = None
        elif "name" in regime_cfg:
            self.regime_detector = build_detector(
                regime_cfg["name"], regime_cfg["params"]
            )
        else:
            # Pre-registry checkpoints stored bare CUSUM config fields.
            self.regime_detector = CusumRegimeDetector(RegimeConfig(**regime_cfg))
        if self.regime_detector is not None and meta["regime_state"] is not None:
            self.regime_detector.restore_state(meta["regime_state"])

        st = meta["stats"]
        self.stats = SessionStats(
            operations=int(st["operations"]),
            communication_seconds=float(st["communication_seconds"]),
            overhead_seconds=float(st["overhead_seconds"]),
            recalibrations=int(st["recalibrations"]),
            failed_recalibrations=int(st["failed_recalibrations"]),
            deferred_recalibrations=int(st["deferred_recalibrations"]),
            holdover_operations=int(st["holdover_operations"]),
            epochs=int(st["epochs"]),
            regime_shifts=int(st["regime_shifts"]),
            regime_spikes=int(st["regime_spikes"]),
            # Pre-streaming checkpoints lack the stream counters.
            stream_updates=int(st.get("stream_updates", 0)),
            stream_fallbacks=int(st.get("stream_fallbacks", 0)),
            history=[
                OperationRecord(
                    op=h["op"],
                    snapshot=h["snapshot"],
                    root=h["root"],
                    elapsed=h["elapsed"],
                    expected=h["expected"],
                    decision=MaintenanceDecision(h["decision"]),
                    health=h["health"],
                    regime=h["regime"],
                )
                for h in history_rows_from_state(arrays, st["history_legends"])
            ],
        )
        self._cursor = int(meta["cursor"])

        self.persistence = None
        self._store = None
        self._journal = None
        self._replaying = False
        return self
