"""Ping-pong measurement inside the simulator.

:class:`NetsimSubstrate` adapts a live :class:`FlowSimulator` (typically with
background traffic running) to the calibration substrate protocol: a
measurement round injects the concurrent bandwidth probes of one schedule
round, lets the simulation progress until all of them finish, and reports
per-pair (α, β). α is taken from the path propagation latency (the 1-byte
probe in the paper measures exactly that, since serialization of one byte is
negligible); β is the measured goodput of the 8 MB probe, which embeds
whatever contention the background traffic causes at that moment — the same
interference the paper's EC2 calibrations experience.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive
from ..errors import CalibrationError
from .simulator import FlowRecord, FlowSimulator

__all__ = ["NetsimSubstrate"]


class NetsimSubstrate:
    """Calibration substrate backed by the flow simulator.

    Parameters
    ----------
    sim:
        Live simulator (background traffic keeps running during probes).
    machines:
        The virtual cluster: datacenter machine ids, indexed by cluster-local
        position. Probe pairs address cluster-local indices.
    probe_bytes:
        Bandwidth-probe size (paper: 8 MB).
    inter_round_gap:
        Simulated idle time inserted between rounds (scheduling slack).
    """

    TAG = "probe"

    def __init__(
        self,
        sim: FlowSimulator,
        machines: list[int] | np.ndarray,
        *,
        probe_bytes: float = 8.0 * 1024 * 1024,
        inter_round_gap: float = 0.01,
    ) -> None:
        self.sim = sim
        self.machines = [int(m) for m in machines]
        if len(set(self.machines)) != len(self.machines):
            raise CalibrationError("cluster machines must be distinct")
        n_dc = sim.topology.n_machines
        for m in self.machines:
            if not 0 <= m < n_dc:
                raise CalibrationError(f"machine {m} outside the datacenter")
        check_positive(probe_bytes, "probe_bytes")
        self.probe_bytes = float(probe_bytes)
        self.inter_round_gap = float(inter_round_gap)

    @property
    def n_machines(self) -> int:
        return len(self.machines)

    def measure_round(
        self, pairs: tuple[tuple[int, int], ...], snapshot: int  # noqa: ARG002
    ) -> list[tuple[float, float]]:
        """Run one concurrent probe round; blocks simulated time until done."""
        if not pairs:
            return []
        sim = self.sim
        outstanding: dict[int, FlowRecord] = {}
        flow_ids: list[int] = []

        def _collect(_sim: FlowSimulator, record: FlowRecord) -> None:
            outstanding[record.flow_id] = record

        start = sim.now + self.inter_round_gap
        for s_local, r_local in pairs:
            src = self.machines[s_local]
            dst = self.machines[r_local]
            fid = sim.schedule_flow(
                start, src, dst, self.probe_bytes, tag=self.TAG, on_complete=_collect
            )
            flow_ids.append(fid)

        # Progress simulated time until every probe of the round completed.
        guard = 0
        while len(outstanding) < len(pairs):
            if not sim._queue:  # pragma: no cover - defensive
                raise CalibrationError("simulator ran dry before probes finished")
            sim.run_until(sim._queue[0][0])
            guard += 1
            if guard > 1_000_000:  # pragma: no cover - defensive
                raise CalibrationError("probe round exceeded event budget")

        results: list[tuple[float, float]] = []
        for (s_local, r_local), fid in zip(pairs, flow_ids):
            record = outstanding[fid]
            src = self.machines[s_local]
            dst = self.machines[r_local]
            latency = sim.topology.path_latency(src, dst)
            beta = record.throughput(latency)
            if not np.isfinite(beta) or beta <= 0:
                raise CalibrationError(f"degenerate probe on pair {(src, dst)}")
            results.append((latency, float(beta)))
        return results
