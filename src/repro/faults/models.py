"""Composable, seeded fault models for calibration measurements.

The paper's own EC2 campaign (and every follow-up — Duplyakin et al.'s "the
only constant is change" line of work) treats lost probes, stragglers and
vanishing VMs as the *normal* operating condition of IaaS measurement, not an
exception. Each :class:`FaultModel` here describes one such failure mode; a
list of models is *materialized* into a :class:`FaultSchedule` — dense
per-entry ``missing``/``suspect`` masks plus multiplicative weight-inflation
factors over a ``(T, N, N)`` trace — by :func:`materialize_faults`.

Determinism contract: materialization draws from a child RNG derived via
:func:`repro.utils.seeding.derive_seed` from ``(seed, model index, model
kind)``, so the same seed and model list always produce the identical fault
schedule, and inserting a model never perturbs the draws of its neighbours.

Two classes of model:

* **transient** (``persistent = False``): probe loss, stragglers, corrupted
  readings. In a trace-level injection the materialized entry is simply
  lost/perturbed; at the probe level (:class:`~repro.faults.inject.FaultySubstrate`)
  each *attempt* re-rolls, so a retry can succeed — which is what makes
  retry-with-backoff worth doing.
* **persistent** (``persistent = True``): VM and rack outages. A dark
  machine stays dark for the scheduled snapshots; retries cannot help.
"""

from __future__ import annotations

import abc
import os
import signal as _signal
from dataclasses import dataclass, field

import numpy as np

from .._validation import check_probability
from ..errors import ValidationError
from ..utils.seeding import derive_seed, spawn_rng

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "FaultModel",
    "ProbeLoss",
    "ProbeStraggler",
    "CorruptedReadings",
    "VMOutage",
    "RackOutage",
    "CrashFault",
    "materialize_faults",
]


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled fault occurrence, for observability and replay reports.

    Entry-level models (probe loss, stragglers, corruption) emit one summary
    event per affected snapshot with ``detail`` = number of affected entries;
    outage models emit one event per outage with ``detail`` = duration in
    snapshots.
    """

    kind: str
    snapshot: int
    machines: tuple[int, ...]
    detail: float


@dataclass(frozen=True)
class FaultSchedule:
    """Materialized fault plan over a ``(T, N, N)`` measurement tensor.

    Attributes
    ----------
    missing:
        ``True`` where the measurement is lost entirely (never observed).
    suspect:
        ``True`` where a value *is* returned but was perturbed (straggler
        inflation, corruption). Suspect entries stay observed — absorbing
        them is exactly what RPCA's sparse term is for.
    factor:
        Multiplicative weight inflation per entry (1.0 = untouched). Applied
        as ``alpha * factor`` and ``beta / factor`` so the α-β transfer time
        scales by roughly ``factor``.
    events:
        Flat record of everything scheduled, ordered by model then snapshot.
    """

    missing: np.ndarray
    suspect: np.ndarray
    factor: np.ndarray
    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        m = np.asarray(self.missing, dtype=bool)
        s = np.asarray(self.suspect, dtype=bool)
        f = np.asarray(self.factor, dtype=np.float64)
        if m.ndim != 3 or m.shape[1] != m.shape[2]:
            raise ValidationError(f"missing must be (T, N, N), got {m.shape}")
        if s.shape != m.shape or f.shape != m.shape:
            raise ValidationError("missing/suspect/factor shape mismatch")
        if np.any(f <= 0) or not np.all(np.isfinite(f)):
            raise ValidationError("factors must be positive and finite")
        for k in range(m.shape[0]):  # the diagonal is never measured
            np.fill_diagonal(m[k], False)
            np.fill_diagonal(s[k], False)
            np.fill_diagonal(f[k], 1.0)
        object.__setattr__(self, "missing", m)
        object.__setattr__(self, "suspect", s)
        object.__setattr__(self, "factor", f)
        object.__setattr__(self, "events", tuple(self.events))

    @property
    def n_snapshots(self) -> int:
        return self.missing.shape[0]

    @property
    def n_machines(self) -> int:
        return self.missing.shape[1]

    @classmethod
    def clean(cls, n_snapshots: int, n_machines: int) -> "FaultSchedule":
        """A schedule with no faults at all."""
        shape = (int(n_snapshots), int(n_machines), int(n_machines))
        return cls(
            missing=np.zeros(shape, dtype=bool),
            suspect=np.zeros(shape, dtype=bool),
            factor=np.ones(shape),
        )

    def merge(self, other: "FaultSchedule") -> "FaultSchedule":
        """Union of two schedules (factors compose multiplicatively)."""
        if other.missing.shape != self.missing.shape:
            raise ValidationError("cannot merge schedules of different shapes")
        return FaultSchedule(
            missing=self.missing | other.missing,
            suspect=self.suspect | other.suspect,
            factor=self.factor * other.factor,
            events=self.events + other.events,
        )

    def count(self, kind: str) -> int:
        """Number of scheduled events of the given kind."""
        return sum(1 for e in self.events if e.kind == kind)


class FaultModel(abc.ABC):
    """One failure mode of the measurement plane.

    Subclasses define ``kind`` (a stable string id used for seed derivation
    and the CLI spec) and ``persistent`` (whether a retry can ever succeed
    against this fault).
    """

    kind: str = "fault"
    persistent: bool = False

    @abc.abstractmethod
    def materialize(
        self, n_snapshots: int, n_machines: int, rng: np.random.Generator
    ) -> FaultSchedule:
        """Draw this model's concrete fault plan for a (T, N) campaign."""

    def probe_effect(self, rng: np.random.Generator) -> tuple[bool, float]:
        """Per-attempt effect on one probe: ``(lost, weight_factor)``.

        Used by the probe-level injector, where each retry re-rolls.
        Persistent models keep the default no-op — their effect comes from
        the materialized schedule instead.
        """
        return (False, 1.0)


def _entry_events(
    kind: str, affected: np.ndarray
) -> tuple[FaultEvent, ...]:
    """One summary event per snapshot with any affected entries."""
    events = []
    for k in range(affected.shape[0]):
        n_hit = int(affected[k].sum())
        if n_hit:
            events.append(
                FaultEvent(kind=kind, snapshot=k, machines=(), detail=float(n_hit))
            )
    return tuple(events)


def _off_diagonal(n_snapshots: int, n_machines: int) -> np.ndarray:
    return np.broadcast_to(
        ~np.eye(n_machines, dtype=bool), (n_snapshots, n_machines, n_machines)
    )


@dataclass(frozen=True)
class ProbeLoss(FaultModel):
    """Each directed probe is lost independently with probability ``rate``."""

    rate: float
    kind = "probe_loss"
    persistent = False

    def __post_init__(self) -> None:
        check_probability(self.rate, "rate")

    def materialize(
        self, n_snapshots: int, n_machines: int, rng: np.random.Generator
    ) -> FaultSchedule:
        sched = FaultSchedule.clean(n_snapshots, n_machines)
        lost = (rng.random(sched.missing.shape) < self.rate) & _off_diagonal(
            n_snapshots, n_machines
        )
        return FaultSchedule(
            missing=lost,
            suspect=sched.suspect,
            factor=sched.factor,
            events=_entry_events(self.kind, lost),
        )

    def probe_effect(self, rng: np.random.Generator) -> tuple[bool, float]:
        return (bool(rng.random() < self.rate), 1.0)


@dataclass(frozen=True)
class ProbeStraggler(FaultModel):
    """A probe hits a straggler/timeout with probability ``rate``.

    The measurement completes but reports a transfer time inflated by
    ``inflation`` — the classic tail-latency artifact. The entry is marked
    *suspect*, not missing: the pipeline's robustness (RPCA's sparse term)
    must absorb it.
    """

    rate: float
    inflation: float = 10.0
    kind = "straggler"
    persistent = False

    def __post_init__(self) -> None:
        check_probability(self.rate, "rate")
        if not np.isfinite(self.inflation) or self.inflation <= 1.0:
            raise ValidationError(
                f"inflation must exceed 1, got {self.inflation!r}"
            )

    def materialize(
        self, n_snapshots: int, n_machines: int, rng: np.random.Generator
    ) -> FaultSchedule:
        sched = FaultSchedule.clean(n_snapshots, n_machines)
        hit = (rng.random(sched.missing.shape) < self.rate) & _off_diagonal(
            n_snapshots, n_machines
        )
        factor = np.where(hit, self.inflation, 1.0)
        return FaultSchedule(
            missing=sched.missing,
            suspect=hit,
            factor=factor,
            events=_entry_events(self.kind, hit),
        )

    def probe_effect(self, rng: np.random.Generator) -> tuple[bool, float]:
        if rng.random() < self.rate:
            return (False, float(self.inflation))
        return (False, 1.0)


@dataclass(frozen=True)
class CorruptedReadings(FaultModel):
    """A reading comes back garbage with probability ``rate``.

    The corrupted value is off by ``scale``× in either direction (too slow
    or impossibly fast), chosen per entry. Marked suspect, not missing.
    """

    rate: float
    scale: float = 50.0
    kind = "corruption"
    persistent = False

    def __post_init__(self) -> None:
        check_probability(self.rate, "rate")
        if not np.isfinite(self.scale) or self.scale <= 1.0:
            raise ValidationError(f"scale must exceed 1, got {self.scale!r}")

    def _draw_factor(self, rng: np.random.Generator, shape) -> np.ndarray:
        return np.where(rng.random(shape) < 0.5, self.scale, 1.0 / self.scale)

    def materialize(
        self, n_snapshots: int, n_machines: int, rng: np.random.Generator
    ) -> FaultSchedule:
        sched = FaultSchedule.clean(n_snapshots, n_machines)
        hit = (rng.random(sched.missing.shape) < self.rate) & _off_diagonal(
            n_snapshots, n_machines
        )
        factor = np.where(hit, self._draw_factor(rng, hit.shape), 1.0)
        return FaultSchedule(
            missing=sched.missing,
            suspect=hit,
            factor=factor,
            events=_entry_events(self.kind, hit),
        )

    def probe_effect(self, rng: np.random.Generator) -> tuple[bool, float]:
        if rng.random() < self.rate:
            return (False, float(self.scale if rng.random() < 0.5 else 1.0 / self.scale))
        return (False, 1.0)


def _outage_mask(
    n_snapshots: int,
    n_machines: int,
    outages: list[tuple[int, tuple[int, ...], int]],
) -> np.ndarray:
    """Missing-mask for (start, machines, duration) outages: dark row + column."""
    missing = np.zeros((n_snapshots, n_machines, n_machines), dtype=bool)
    for start, machines, duration in outages:
        stop = min(start + duration, n_snapshots)
        for m in machines:
            missing[start:stop, m, :] = True
            missing[start:stop, :, m] = True
    return missing


@dataclass(frozen=True)
class VMOutage(FaultModel):
    """A VM goes dark — every probe to or from it fails — for a while.

    Either schedule one deterministic outage (``machine``/``start`` given)
    or draw random ones: each machine independently starts an outage with
    probability ``rate`` per snapshot. Persistent: retries within the
    outage window cannot succeed.
    """

    rate: float = 0.0
    duration: int = 2
    machine: int | None = None
    start: int | None = None
    kind = "vm_outage"
    persistent = True

    def __post_init__(self) -> None:
        check_probability(self.rate, "rate")
        if int(self.duration) < 1:
            raise ValidationError("duration must be >= 1 snapshot")
        if (self.machine is None) != (self.start is None):
            raise ValidationError(
                "deterministic outage needs both machine and start"
            )
        if self.machine is None and self.rate == 0.0:
            raise ValidationError(
                "VMOutage needs either a positive rate or machine+start"
            )

    def materialize(
        self, n_snapshots: int, n_machines: int, rng: np.random.Generator
    ) -> FaultSchedule:
        sched = FaultSchedule.clean(n_snapshots, n_machines)
        outages: list[tuple[int, tuple[int, ...], int]] = []
        if self.machine is not None:
            if not 0 <= int(self.machine) < n_machines:
                raise ValidationError(f"machine {self.machine} out of range")
            if not 0 <= int(self.start) < n_snapshots:
                raise ValidationError(f"start {self.start} out of range")
            outages.append((int(self.start), (int(self.machine),), int(self.duration)))
        else:
            starts = rng.random((n_snapshots, n_machines)) < self.rate
            for k, m in np.argwhere(starts):
                outages.append((int(k), (int(m),), int(self.duration)))
        events = tuple(
            FaultEvent(
                kind=self.kind, snapshot=start, machines=machines,
                detail=float(duration),
            )
            for start, machines, duration in outages
        )
        return FaultSchedule(
            missing=_outage_mask(n_snapshots, n_machines, outages),
            suspect=sched.suspect,
            factor=sched.factor,
            events=events,
        )


@dataclass(frozen=True)
class RackOutage(FaultModel):
    """A correlated outage: a whole rack's worth of VMs goes dark together.

    The rack membership is either given (``machines``) or drawn once per
    materialization (``group_size`` random machines). The rack then blips
    with probability ``rate`` per snapshot (or deterministically at
    ``start``), taking every member dark for ``duration`` snapshots.
    """

    rate: float = 0.0
    duration: int = 2
    group_size: int = 4
    machines: tuple[int, ...] | None = None
    start: int | None = None
    kind = "rack_outage"
    persistent = True

    def __post_init__(self) -> None:
        check_probability(self.rate, "rate")
        if int(self.duration) < 1:
            raise ValidationError("duration must be >= 1 snapshot")
        if int(self.group_size) < 1:
            raise ValidationError("group_size must be >= 1")
        if self.start is None and self.rate == 0.0:
            raise ValidationError(
                "RackOutage needs either a positive rate or a start snapshot"
            )

    def materialize(
        self, n_snapshots: int, n_machines: int, rng: np.random.Generator
    ) -> FaultSchedule:
        sched = FaultSchedule.clean(n_snapshots, n_machines)
        if self.machines is not None:
            group = tuple(int(m) for m in self.machines)
            if any(not 0 <= m < n_machines for m in group):
                raise ValidationError("rack machine index out of range")
        else:
            size = min(int(self.group_size), n_machines)
            group = tuple(
                int(m) for m in rng.choice(n_machines, size=size, replace=False)
            )
        outages: list[tuple[int, tuple[int, ...], int]] = []
        if self.start is not None:
            if not 0 <= int(self.start) < n_snapshots:
                raise ValidationError(f"start {self.start} out of range")
            outages.append((int(self.start), group, int(self.duration)))
        else:
            starts = rng.random(n_snapshots) < self.rate
            for k in np.flatnonzero(starts):
                outages.append((int(k), group, int(self.duration)))
        events = tuple(
            FaultEvent(
                kind=self.kind, snapshot=start, machines=machines,
                detail=float(duration),
            )
            for start, machines, duration in outages
        )
        return FaultSchedule(
            missing=_outage_mask(n_snapshots, n_machines, outages),
            suspect=sched.suspect,
            factor=sched.factor,
            events=events,
        )


@dataclass(frozen=True)
class CrashFault(FaultModel):
    """The *process* dies — SIGKILL, OOM-kill, spot-instance preemption.

    Unlike every other model, this one attacks the optimization runtime
    itself rather than the measurement plane: when the session's operation
    counter reaches ``at_operation``, :meth:`trigger` kills the current
    process without any chance to clean up (no ``atexit``, no ``finally``).
    Surviving it is the persistence layer's job — the kill-and-recover
    chaos harness (:mod:`repro.persistence.chaos`) schedules exactly this
    fault in a child process and asserts recovery converges to the same
    ``P_D`` as an uninterrupted run.

    ``materialize`` contributes no measurement faults, only a ``crash``
    event (``snapshot`` holds the operation index, ``detail`` 0), so a
    CrashFault composes freely with measurement models in one spec.
    """

    at_operation: int
    kind = "crash"
    persistent = True

    def __post_init__(self) -> None:
        if int(self.at_operation) < 0:
            raise ValidationError("at_operation must be >= 0")

    def materialize(
        self, n_snapshots: int, n_machines: int, rng: np.random.Generator
    ) -> FaultSchedule:
        sched = FaultSchedule.clean(n_snapshots, n_machines)
        return FaultSchedule(
            missing=sched.missing,
            suspect=sched.suspect,
            factor=sched.factor,
            events=(
                FaultEvent(
                    kind=self.kind,
                    snapshot=int(self.at_operation),
                    machines=(),
                    detail=0.0,
                ),
            ),
        )

    def fires(self, operation: int) -> bool:
        """Whether the crash is scheduled for this operation index."""
        return int(operation) == int(self.at_operation)

    def trigger(self) -> None:  # pragma: no cover - kills the test process
        """Die, now, uncleanly. SIGKILL where available, hard exit otherwise."""
        if hasattr(_signal, "SIGKILL"):
            os.kill(os.getpid(), _signal.SIGKILL)
        os._exit(137)


def materialize_faults(
    models: list[FaultModel] | tuple[FaultModel, ...],
    n_snapshots: int,
    n_machines: int,
    *,
    seed: int | None = None,
) -> FaultSchedule:
    """Materialize a list of fault models into one merged schedule.

    Each model draws from its own child stream derived from ``(seed, index,
    kind)``, so the composite schedule is reproducible and insensitive to
    how many random draws sibling models consume.
    """
    if int(n_snapshots) < 1 or int(n_machines) < 1:
        raise ValidationError("need at least one snapshot and one machine")
    if seed is None:
        seed = int(spawn_rng(None).integers(0, 2**31 - 1))
    sched = FaultSchedule.clean(n_snapshots, n_machines)
    for i, model in enumerate(models):
        if not isinstance(model, FaultModel):
            raise ValidationError(
                f"faults[{i}] is {type(model).__name__}, not a FaultModel"
            )
        rng = spawn_rng(derive_seed(int(seed), i, model.kind))
        sched = sched.merge(model.materialize(int(n_snapshots), int(n_machines), rng))
    return sched
