"""Small shared utilities: deterministic seeding and lightweight timing."""

from .seeding import spawn_rng, derive_seed
from .timing import Timer

__all__ = ["spawn_rng", "derive_seed", "Timer"]
