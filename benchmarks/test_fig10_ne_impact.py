"""Fig 10 — impact of Norm(N_E) on optimization effectiveness.

Paper shape: the RPCA-over-Baseline improvement decays as Norm(N_E) grows —
above 40% when the network is stable (< 0.1), under 20% beyond ≈0.2 — and
RPCA's margin over Heuristics is positive throughout, with EC2 sitting at
the stable end (≈0.1).
"""

import numpy as np

from repro.cloudsim.dynamics import DynamicsConfig
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.experiments import fig10_ne_impact
from repro.experiments.report import format_table

TARGETS = (0.05, 0.1, 0.2, 0.3, 0.5)


def test_fig10_norm_ne_impact(benchmark, emit):
    # A calm base trace (intrinsic Norm(N_E) well below the smallest target)
    # lets the noise injection sweep the whole range, as in the paper where
    # noise is added on top of the measured EC2 trace.
    calm = DynamicsConfig(
        volatility_sigma=0.02,
        spike_probability=0.002,
        spike_severity=3.0,
        hotspot_probability=0.005,
        hotspot_severity=1.0,
    )
    trace = generate_trace(
        TraceConfig(n_machines=32, n_snapshots=30, dynamics=calm), seed=12
    )

    result = benchmark.pedantic(
        fig10_ne_impact.run,
        args=(trace,),
        kwargs=dict(targets=TARGETS, repetitions=80, solver="apg", seed=0),
        rounds=1,
        iterations=1,
    )

    emit(
        format_table(
            [
                "Norm(N_E)",
                "bcast vs Baseline",
                "scatter vs Baseline",
                "mapping vs Baseline",
                "bcast vs Heuristics",
            ],
            result.as_rows(),
            title="Fig 10: expected improvement of RPCA vs Norm(N_E), 32 VMs",
        )
    )

    pts = result.points
    achieved = [p.achieved_norm_ne for p in pts]
    assert all(b > a for a, b in zip(achieved, achieved[1:]))  # targets hit in order
    # Decay of the broadcast improvement from the stable to the dynamic end.
    bcast = [p.broadcast_vs_baseline for p in pts]
    assert bcast[0] > bcast[-1]
    assert bcast[0] > 0.25  # strong gains on a stable network
    # Beyond ~0.5 the improvement has decayed substantially relative to the
    # stable end. (The decay is shallower than the paper's knee because the
    # synthetic constant component has a wide 2.5x tier gap that survives
    # heavy noise; see EXPERIMENTS.md.)
    assert bcast[-1] < 0.75 * bcast[0]
    # Scatter decays too (compare ends, allowing noise). Mapping's
    # sum-of-edges objective is insensitive to symmetric noise, so we only
    # require it to remain a (small) positive gain at the stable end.
    assert pts[0].scatter_vs_baseline > pts[-1].scatter_vs_baseline - 0.05
    assert pts[0].mapping_vs_baseline > 0.0
