"""The regime-detector registry and the non-CUSUM detector implementations.

CUSUM's own unit behavior stays pinned in ``test_regime.py`` (it moved
modules, not behavior); this file covers what PR 8 added: the registry
surface every config layer builds detectors through, the CLI parameter
parser, the three new detectors' distinguishing behaviors, and the
protocol obligations (state round-trip, finite-input guard, counter
survival across resets) enforced uniformly over every registered name.
"""

import numpy as np
import pytest

from repro.core.detectors import (
    DEFAULT_DETECTOR,
    CusumRegimeDetector,
    DriftRegimeDetector,
    NoiseRobustRegimeDetector,
    RegimeConfig,
    RegimeDetector,
    RegimeVerdict,
    SignatureRegimeDetector,
    build_detector,
    detector_names,
    detector_spec,
    parse_detector_params,
    register_detector,
    validate_regime_detector,
)
from repro.errors import ValidationError

BASELINE = (0.10, 0.11, 0.09, 0.10, 0.105, 0.095, 0.10, 0.11)


def _warm(det, values=BASELINE):
    """Feed a calm baseline until the detector has warmed up."""
    i = 0
    while not det.warmed_up:
        det.observe(values[i % len(values)])
        i += 1
    return det


class TestRegistry:
    def test_stock_detectors_registered(self):
        assert set(detector_names()) >= {
            "cusum", "signature", "noise-robust", "drift"
        }
        assert DEFAULT_DETECTOR in detector_names()

    def test_build_default_is_historical_cusum(self):
        det = build_detector("cusum")
        assert isinstance(det, CusumRegimeDetector)
        assert det.config == RegimeConfig()

    def test_build_with_params(self):
        det = build_detector("drift", {"window": 6, "decision": 3.0})
        assert isinstance(det, DriftRegimeDetector)
        assert det.config.window == 6
        assert det.config.decision == 3.0

    def test_every_registered_detector_satisfies_the_protocol(self):
        for name in detector_names():
            det = build_detector(name)
            assert isinstance(det, RegimeDetector)
            assert det.name == name
            assert det.params() == build_detector(name).params()

    def test_unknown_name_lists_the_registry(self):
        with pytest.raises(ValidationError, match="registered detectors"):
            build_detector("kalman")
        with pytest.raises(ValidationError, match="kalman"):
            detector_spec("kalman")

    def test_bad_params_name_the_detector(self):
        with pytest.raises(ValidationError, match="cusum"):
            build_detector("cusum", {"no_such_knob": 1})
        with pytest.raises(ValidationError, match="warmup"):
            build_detector("signature", {"warmup": 0})

    def test_register_rejects_empty_name(self):
        with pytest.raises(ValidationError, match="non-empty"):
            register_detector("", CusumRegimeDetector, RegimeConfig)

    def test_reregistering_replaces(self):
        class Tuned(CusumRegimeDetector):
            pass

        original = detector_spec("cusum")
        try:
            register_detector("cusum", Tuned, RegimeConfig)
            assert isinstance(build_detector("cusum"), Tuned)
        finally:
            register_detector("cusum", *original)
        assert type(build_detector("cusum")) is CusumRegimeDetector

    def test_validate_regime_detector(self):
        validate_regime_detector(None, None)
        validate_regime_detector("drift", {"decision": 3.0})
        with pytest.raises(ValidationError, match="without a regime_detector"):
            validate_regime_detector(None, {"decision": 3.0})
        with pytest.raises(ValidationError, match="registered detectors"):
            validate_regime_detector("kalman", None)

    def test_maintenance_reexports_survive(self):
        # Historical import home: extraction must not break PR-3 callers.
        from repro.core import maintenance

        assert maintenance.CusumRegimeDetector is CusumRegimeDetector
        assert maintenance.RegimeVerdict is RegimeVerdict
        assert maintenance.RegimeConfig is RegimeConfig


class TestParseDetectorParams:
    def test_empty_and_none(self):
        assert parse_detector_params(None) == {}
        assert parse_detector_params("") == {}

    def test_int_float_coercion(self):
        assert parse_detector_params("warmup=8,decision=6.5") == {
            "warmup": 8,
            "decision": 6.5,
        }
        assert type(parse_detector_params("warmup=8")["warmup"]) is int

    def test_whitespace_and_trailing_comma(self):
        assert parse_detector_params(" window = 5 , ") == {"window": 5}

    def test_malformed_tokens(self):
        with pytest.raises(ValidationError, match="key=value"):
            parse_detector_params("decision")
        with pytest.raises(ValidationError, match="key=value"):
            parse_detector_params("=3")
        with pytest.raises(ValidationError, match="expected a number"):
            parse_detector_params("decision=high")

    def test_duplicate_key(self):
        with pytest.raises(ValidationError, match="duplicate"):
            parse_detector_params("window=4,window=5")


class TestProtocolObligations:
    """Uniform contracts enforced over every registered detector."""

    @pytest.mark.parametrize("name", detector_names())
    def test_warmup_is_always_stable(self, name):
        det = build_detector(name)
        while not det.warmed_up:
            assert det.observe(1000.0) is RegimeVerdict.STABLE
        assert det.shifts == 0 and det.spikes == 0

    @pytest.mark.parametrize("name", detector_names())
    def test_calm_stream_stays_stable(self, name):
        det = build_detector(name)
        rng = np.random.default_rng(3)
        verdicts = {
            det.observe(0.1 + 0.005 * rng.standard_normal())
            for _ in range(60)
        }
        assert verdicts == {RegimeVerdict.STABLE}

    @pytest.mark.parametrize("name", detector_names())
    def test_sustained_elevation_fires_and_rewarns(self, name):
        det = _warm(build_detector(name))
        for _ in range(12):
            if det.observe(5.0) is RegimeVerdict.SHIFT:
                break
        else:
            pytest.fail(f"{name} never classified sustained elevation as SHIFT")
        assert det.shifts == 1
        assert not det.warmed_up  # reset: the new level re-warms
        # After re-learning, the new level is the new normal.
        _warm(det, values=(5.0, 5.01, 4.99, 5.0, 5.02, 4.98, 5.0, 5.01))
        for _ in range(len(BASELINE)):
            det.observe(5.0)
        assert det.shifts == 1

    @pytest.mark.parametrize("name", detector_names())
    def test_non_finite_observation_rejected(self, name):
        det = build_detector(name)
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ValueError, match="finite"):
                det.observe(bad)

    @pytest.mark.parametrize("name", detector_names())
    def test_mid_stream_state_round_trip(self, name):
        """Clone from state_dict mid-warmup and mid-window; both clones
        must then classify an identical continuation identically."""
        rng = np.random.default_rng(7)
        stream = [0.1 + 0.01 * abs(rng.standard_normal()) for _ in range(30)]
        stream[20:] = [x + 0.4 for x in stream[20:]]  # shift near the end
        for split in (2, 12):  # inside warmup / inside the live window
            det = build_detector(name)
            for x in stream[:split]:
                det.observe(x)
            clone = build_detector(name)
            clone.restore_state(det.state_dict())
            assert clone.state_dict() == det.state_dict()
            for x in stream[split:]:
                assert clone.observe(x) is det.observe(x)
            assert clone.shifts == det.shifts
            assert clone.spikes == det.spikes

    @pytest.mark.parametrize("name", detector_names())
    def test_counters_survive_reset(self, name):
        det = _warm(build_detector(name))
        while det.shifts == 0:
            det.observe(8.0)
        det.reset()
        assert det.shifts == 1  # lifetime counters, not per-regime state


class TestSignatureDetector:
    def test_dispersion_change_alone_fires(self):
        """A regime that widens the residual distribution without moving
        its center must still drive the signature distance — the coordinate
        plain CUSUM does not have."""
        det = _warm(SignatureRegimeDetector())
        # Alternate far below/above baseline: window mean stays ~0 but the
        # window dispersion leaves the baseline's unit spread far behind.
        verdicts = [det.observe(0.1 + s * 0.08) for s in (1, -1) * 6]
        assert RegimeVerdict.SHIFT in verdicts

    def test_single_spike_decays_out_of_window(self):
        det = _warm(SignatureRegimeDetector())
        assert det.observe(50.0) is RegimeVerdict.SPIKE
        for _ in range(det.config.window):
            det.observe(0.10)
        assert det.distance < det.config.shift_distance
        assert det.shifts == 0 and det.spikes == 1


class TestNoiseRobustDetector:
    def test_minority_outliers_never_fire(self):
        """Up to (window-1)//2 violent outliers per window leave the window
        median untouched — the bursty profile where CUSUM accumulates."""
        det = _warm(NoiseRobustRegimeDetector())
        for _ in range(10):
            det.observe(1e6)  # lone burst...
            det.observe(0.10)  # ...always outnumbered by calm samples
            det.observe(0.11)
        assert det.shifts == 0
        assert det.spikes == 10

    def test_majority_elevation_fires(self):
        det = _warm(NoiseRobustRegimeDetector())
        verdicts = [det.observe(5.0) for _ in range(det.config.window + 1)]
        assert RegimeVerdict.SHIFT in verdicts

    def test_cusum_accumulates_where_median_holds(self):
        """The contrast the benchmark measures, in miniature: periodic
        bursts walk CUSUM's statistic to the decision line while the
        rank statistic ignores them outright."""
        cusum = _warm(CusumRegimeDetector())
        robust = _warm(NoiseRobustRegimeDetector())
        for _ in range(12):
            for det in (cusum, robust):
                det.observe(20.0)  # one burst per triple: always a window
                det.observe(0.10)  # minority, so the median never moves,
                det.observe(0.11)  # while CUSUM nets +spike_z - 3*drift
        assert cusum.shifts > 0
        assert robust.shifts == 0


class TestDriftDetector:
    @staticmethod
    def _ramp(start=0.10, step=0.004, n=40):
        return [start + i * step for i in range(n)]

    def test_slow_ramp_fires_before_cusum(self):
        """The tentpole scenario: a per-step elevation well under CUSUM's
        drift slack accumulates undiminished in the anchored window mean."""
        drift = DriftRegimeDetector()
        cusum = CusumRegimeDetector()
        ramp = self._ramp()
        drift_at = cusum_at = None
        for i, x in enumerate(ramp):
            if drift_at is None and drift.observe(x) is RegimeVerdict.SHIFT:
                drift_at = i
            if cusum_at is None and cusum.observe(x) is RegimeVerdict.SHIFT:
                cusum_at = i
        assert drift_at is not None
        assert cusum_at is None or drift_at < cusum_at

    def test_trend_during_warmup_does_not_deaden_the_scale(self):
        """The lag-1 difference scale is the point of the design: a ramp
        already under way during warmup must not inflate σ so far that the
        detector goes blind."""
        det = DriftRegimeDetector()
        for x in self._ramp(step=0.01, n=30):
            if det.observe(x) is RegimeVerdict.SHIFT:
                return
        pytest.fail("ramp through warmup was never classified as a shift")

    def test_single_spike_is_winsorized(self):
        det = _warm(DriftRegimeDetector())
        assert det.observe(1e6) is RegimeVerdict.SPIKE
        for _ in range(det.config.window):
            assert det.observe(0.10) is not RegimeVerdict.SHIFT
        assert det.shifts == 0
