"""Unit tests for the tree topology and max-min fair sharing."""

import numpy as np
import pytest

from repro.errors import SimulationError, TopologyError
from repro.netsim.fairshare import build_incidence, max_min_fair_rates
from repro.netsim.topology import GBIT, TreeTopology


class TestTreeTopology:
    def test_paper_default_geometry(self):
        topo = TreeTopology()
        assert topo.n_machines == 1024
        assert topo.n_racks == 32
        assert topo.rack_bandwidth == pytest.approx(1 * GBIT)
        assert topo.core_bandwidth == pytest.approx(10 * GBIT)

    def test_rack_of(self):
        topo = TreeTopology(n_racks=4, servers_per_rack=8)
        assert topo.rack_of(0) == 0
        assert topo.rack_of(7) == 0
        assert topo.rack_of(8) == 1
        assert topo.rack_of(31) == 3

    def test_same_rack_path_two_hops(self):
        topo = TreeTopology(n_racks=2, servers_per_rack=4)
        p = topo.path(0, 3)
        assert len(p) == 2
        assert p[0] == topo.access_up(0)
        assert p[1] == topo.access_down(3)

    def test_cross_rack_path_four_hops(self):
        topo = TreeTopology(n_racks=2, servers_per_rack=4)
        p = topo.path(0, 5)
        assert len(p) == 4
        assert p[1] == topo.uplink_up(0)
        assert p[2] == topo.uplink_down(1)

    def test_path_latency(self):
        topo = TreeTopology(n_racks=2, servers_per_rack=4, hop_latency=1e-5)
        assert topo.path_latency(0, 1) == pytest.approx(2e-5)
        assert topo.path_latency(0, 5) == pytest.approx(4e-5)

    def test_self_path_rejected(self):
        topo = TreeTopology(n_racks=2, servers_per_rack=2)
        with pytest.raises(TopologyError):
            topo.path(1, 1)

    def test_link_capacities_layout(self):
        topo = TreeTopology(n_racks=2, servers_per_rack=2)
        m = topo.n_machines
        assert topo.capacities[topo.access_up(0)] == topo.rack_bandwidth
        assert topo.capacities[topo.uplink_up(0)] == topo.core_bandwidth
        assert topo.n_links == 2 * m + 4

    def test_machine_out_of_range(self):
        topo = TreeTopology(n_racks=2, servers_per_rack=2)
        with pytest.raises(TopologyError):
            topo.rack_of(99)

    def test_geometry_validated(self):
        with pytest.raises(TopologyError):
            TreeTopology(n_racks=0)


class TestMaxMinFair:
    def test_single_flow_gets_capacity(self):
        inc = build_incidence([(0,)], 1)
        rates = max_min_fair_rates(inc, np.array([5.0]))
        assert rates[0] == pytest.approx(5.0)

    def test_two_flows_share_equally(self):
        inc = build_incidence([(0,), (0,)], 1)
        rates = max_min_fair_rates(inc, np.array([4.0]))
        np.testing.assert_allclose(rates, [2.0, 2.0])

    def test_bottleneck_frees_other_links(self):
        # Flow A crosses links 0 and 1; flow B only link 1. Link 0 is the
        # bottleneck for A, so B takes the leftover of link 1.
        inc = build_incidence([(0, 1), (1,)], 2)
        rates = max_min_fair_rates(inc, np.array([1.0, 10.0]))
        np.testing.assert_allclose(rates, [1.0, 9.0])

    def test_classic_three_flow_example(self):
        # Two links cap 1; flows: A on both, B on link0, C on link1.
        inc = build_incidence([(0, 1), (0,), (1,)], 2)
        rates = max_min_fair_rates(inc, np.array([1.0, 1.0]))
        np.testing.assert_allclose(rates, [0.5, 0.5, 0.5])

    def test_feasibility(self):
        rng = np.random.default_rng(0)
        n_links = 12
        paths = [tuple(rng.choice(n_links, size=3, replace=False)) for _ in range(30)]
        caps = rng.uniform(1, 5, size=n_links)
        rates = max_min_fair_rates(build_incidence(paths, n_links), caps)
        load = np.zeros(n_links)
        for p, r in zip(paths, rates):
            for l in p:
                load[l] += r
        assert np.all(load <= caps * (1 + 1e-9))

    def test_max_min_property(self):
        # No flow can be raised without lowering a flow of smaller-or-equal
        # rate: every flow crosses a saturated link whose minimum-rate flow
        # is itself.
        rng = np.random.default_rng(1)
        n_links = 8
        paths = [tuple(rng.choice(n_links, size=2, replace=False)) for _ in range(16)]
        caps = rng.uniform(1, 3, size=n_links)
        inc = build_incidence(paths, n_links)
        rates = max_min_fair_rates(inc, caps)
        load = inc.T.astype(float) @ rates
        for f, path in enumerate(paths):
            saturated = [l for l in path if load[l] >= caps[l] - 1e-6]
            assert saturated, f"flow {f} crosses no saturated link"
            # On at least one saturated link, f's rate is the max share rule:
            ok = False
            for l in saturated:
                flows_on_l = np.flatnonzero(inc[:, l])
                if rates[f] >= rates[flows_on_l].max() - 1e-9:
                    ok = True
            assert ok, f"flow {f} could be increased"

    def test_empty_flows(self):
        assert max_min_fair_rates(np.zeros((0, 3), dtype=bool), np.ones(3)).size == 0

    def test_flow_without_links_rejected(self):
        inc = np.zeros((1, 2), dtype=bool)
        with pytest.raises(SimulationError, match="at least one link"):
            max_min_fair_rates(inc, np.ones(2))

    def test_nonpositive_capacity_rejected(self):
        inc = build_incidence([(0,)], 1)
        with pytest.raises(SimulationError):
            max_min_fair_rates(inc, np.array([0.0]))

    def test_bad_link_id_rejected(self):
        with pytest.raises(SimulationError):
            build_incidence([(5,)], 2)
