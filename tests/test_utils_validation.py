"""Unit tests for seeding, timing and shared validation helpers."""

import time

import numpy as np
import pytest

from repro._validation import (
    as_float_matrix,
    as_square_matrix,
    check_in_range,
    check_index,
    check_nonnegative,
    check_positive,
    check_probability,
)
from repro.errors import ValidationError
from repro.utils.seeding import derive_seed, spawn_rng
from repro.utils.timing import Timer


class TestSpawnRng:
    def test_none_gives_generator(self):
        assert isinstance(spawn_rng(None), np.random.Generator)

    def test_int_deterministic(self):
        a = spawn_rng(7).random(3)
        b = spawn_rng(7).random(3)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert spawn_rng(g) is g


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "trace", 7) == derive_seed(42, "trace", 7)

    def test_key_sensitivity(self):
        base = derive_seed(42, "trace", 7)
        assert derive_seed(42, "trace", 8) != base
        assert derive_seed(42, "other", 7) != base
        assert derive_seed(43, "trace", 7) != base

    def test_string_and_int_keys_mix(self):
        s = derive_seed(1, "a", 2, "b", 3)
        assert isinstance(s, int) and 0 <= s < 2**31

    def test_does_not_depend_on_hash_randomization(self):
        # FNV over utf-8 bytes: a fixed expected value pins the algorithm.
        assert derive_seed(0, "x") == derive_seed(0, "x")
        assert derive_seed(0, "x") != derive_seed(0, "y")


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed > first >= 0.01

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0


class TestValidationHelpers:
    def test_as_float_matrix_coerces(self):
        out = as_float_matrix([[1, 2], [3, 4]])
        assert out.dtype == np.float64 and out.flags["C_CONTIGUOUS"]

    def test_as_float_matrix_rejects_1d(self):
        with pytest.raises(ValidationError):
            as_float_matrix([1, 2, 3])

    def test_as_float_matrix_rejects_nan(self):
        with pytest.raises(ValidationError, match="finite"):
            as_float_matrix([[1.0, np.nan]])

    def test_as_square_matrix(self):
        with pytest.raises(ValidationError, match="square"):
            as_square_matrix(np.ones((2, 3)))

    def test_check_positive(self):
        assert check_positive(1.5, "x") == 1.5
        for bad in (0.0, -1.0, np.inf, np.nan):
            with pytest.raises(ValidationError):
                check_positive(bad, "x")

    def test_check_nonnegative(self):
        assert check_nonnegative(0.0, "x") == 0.0
        with pytest.raises(ValidationError):
            check_nonnegative(-0.1, "x")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        for bad in (-0.1, 1.1):
            with pytest.raises(ValidationError):
                check_probability(bad, "p")

    def test_check_in_range(self):
        assert check_in_range(2.0, 1.0, 3.0, "v") == 2.0
        with pytest.raises(ValidationError):
            check_in_range(4.0, 1.0, 3.0, "v")

    def test_check_index(self):
        assert check_index(2, 5, "i") == 2
        with pytest.raises(ValidationError):
            check_index(5, 5, "i")
        with pytest.raises(ValidationError):
            check_index(-1, 5, "i")
