"""Degraded-mode maintenance: health state machine and faulty replays."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloudsim.dynamics import DynamicsConfig, apply_step_regime
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.core.detectors import detector_names
from repro.core.maintenance import (
    DegradedModeController,
    HealthState,
    ResilienceConfig,
)
from repro.errors import CalibrationError
from repro.runtime import TraceSession

pytestmark = pytest.mark.faults

FAULTS = "probe_loss=0.1,vm_outage=3:12:3"


@pytest.fixture(scope="module")
def replay_trace():
    return generate_trace(TraceConfig(n_machines=16, n_snapshots=40), seed=3)


class TestDegradedModeController:
    def test_failure_path_reaches_holdover(self):
        ctl = DegradedModeController(ResilienceConfig(holdover_after=2))
        assert ctl.state is HealthState.HEALTHY
        ctl.record_failure("no probes")
        assert ctl.state is HealthState.DEGRADED
        ctl.record_failure("still no probes")
        assert ctl.state is HealthState.HOLDOVER
        ctl.record_success()
        assert ctl.state is HealthState.HEALTHY
        assert [
            (t.previous.value, t.state.value) for t in ctl.transitions
        ] == [
            ("healthy", "degraded"),
            ("degraded", "holdover"),
            ("holdover", "healthy"),
        ]

    def test_backoff_doubles_and_caps(self):
        cfg = ResilienceConfig(
            recal_backoff_operations=1, recal_backoff_factor=2.0,
            recal_backoff_max=4,
        )
        assert [cfg.backoff_operations(k) for k in range(6)] == [0, 1, 2, 4, 4, 4]

    def test_cooldown_paces_attempts(self):
        ctl = DegradedModeController(
            ResilienceConfig(recal_backoff_operations=2, recal_backoff_max=8)
        )
        ctl.record_failure("x")
        assert not ctl.should_attempt()
        ctl.tick()
        assert not ctl.should_attempt()
        ctl.tick()
        assert ctl.should_attempt()

    def test_staleness_accounting(self):
        ctl = DegradedModeController()
        for _ in range(5):
            ctl.tick()
        assert ctl.staleness == 5
        ctl.record_success()
        assert ctl.staleness == 0
        assert ctl.max_staleness == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"holdover_after": 0},
            {"recal_backoff_factor": 0.5},
            {"recal_backoff_operations": 4, "recal_backoff_max": 2},
            {"min_snapshot_observed": 1.5},
            {"max_probe_retries": -1},
            {"retry_backoff_seconds": -0.5},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(Exception):
            ResilienceConfig(**kwargs)


class TestFaultySession:
    def test_degrades_recovers_and_stays_close_to_fault_free(self, replay_trace):
        # The acceptance scenario: 10% probe loss plus one VM outage. The
        # session must pass through DEGRADED and HOLDOVER, recover, and end
        # within 10% of the fault-free communication time.
        base = TraceSession(replay_trace, time_step=10, threshold=0.1)
        for _ in range(60):
            base.run_collective("broadcast", root=0)

        sess = TraceSession(
            replay_trace, time_step=10, threshold=0.1,
            faults=FAULTS, fault_seed=11,
        )
        seen = set()
        for _ in range(60):
            seen.add(sess.run_collective("broadcast", root=0).health)
        assert seen == {"healthy", "degraded", "holdover"}
        assert sess.health_state is HealthState.HEALTHY  # recovered
        assert sess.stats.failed_recalibrations > 0
        assert sess.stats.deferred_recalibrations > 0
        assert sess.stats.holdover_operations > 0
        rel = abs(
            sess.stats.communication_seconds - base.stats.communication_seconds
        ) / base.stats.communication_seconds
        assert rel < 0.10

    def test_transitions_cite_the_failure(self, replay_trace):
        sess = TraceSession(
            replay_trace, time_step=10, threshold=0.1,
            faults=FAULTS, fault_seed=11,
        )
        for _ in range(60):
            sess.run_collective("broadcast", root=0)
        transitions = sess.health_transitions
        assert any(t.state is HealthState.DEGRADED for t in transitions)
        degraded = next(t for t in transitions if t.state is HealthState.DEGRADED)
        assert "observed" in degraded.reason

    def test_faulty_replay_is_seed_deterministic(self, replay_trace):
        def run():
            sess = TraceSession(
                replay_trace, time_step=10, threshold=0.1,
                faults=FAULTS, fault_seed=11,
            )
            for _ in range(30):
                sess.run_collective("broadcast", root=0)
            return sess.stats

        a, b = run(), run()
        assert a.communication_seconds == b.communication_seconds
        assert a.failed_recalibrations == b.failed_recalibrations
        assert [r.health for r in a.history] == [r.health for r in b.history]

    def test_operations_priced_on_ground_truth(self, replay_trace):
        # Faults hit what calibration observes, not the network itself: the
        # live elapsed time of an operation must match a fault-free session
        # at the same cursor whenever both use the same constant component.
        base = TraceSession(replay_trace, time_step=10)
        faulty = TraceSession(
            replay_trace, time_step=10, faults="straggler=0.0", fault_seed=1
        )
        rb = base.run_collective("broadcast", root=0)
        rf = faulty.run_collective("broadcast", root=0)
        assert rf.elapsed == rb.elapsed

    def test_initial_calibration_failure_propagates(self, replay_trace):
        # The session cannot boot without one good calibration window.
        with pytest.raises(CalibrationError):
            TraceSession(
                replay_trace, time_step=10,
                faults="vm_outage=3:0:10", fault_seed=1,
                resilience=ResilienceConfig(min_snapshot_observed=0.9),
            )

    def test_holdover_serves_last_good_component(self, replay_trace):
        sess = TraceSession(
            replay_trace, time_step=10, threshold=0.05,
            faults=FAULTS, fault_seed=11,
        )
        good_row = sess.decomposition.constant.row.copy()
        while sess.health_state is HealthState.HEALTHY:
            sess.run_collective("broadcast", root=0)
            if sess.stats.operations > 100:
                pytest.fail("session never degraded")
            if sess.health_state is HealthState.HEALTHY:
                good_row = sess.decomposition.constant.row.copy()
        # while degraded the constant component is the last good one
        assert np.array_equal(sess.decomposition.constant.row, good_row)
        assert sess.staleness >= 1


class TestRegimeDetectorIntegration:
    """Detector fires → forced cold re-calibration → health machinery reset.

    The same contract for every registered detector: a SHIFT verdict must
    bypass the parked maintenance loop, re-solve cold, clear the
    degraded-mode staleness clock, and leave the detector re-warming for
    the new regime.
    """

    @pytest.fixture(scope="class")
    def step_trace(self):
        base = generate_trace(
            TraceConfig(
                n_machines=6,
                n_snapshots=44,
                dynamics=DynamicsConfig(
                    volatility_sigma=0.02,
                    spike_probability=0.0,
                    hotspot_probability=0.0,
                    migration_rate=0.0,
                ),
            ),
            seed=5,
        )
        return apply_step_regime(base, start=26, factor=3.0)

    @pytest.mark.parametrize("detector", detector_names())
    def test_shift_forces_cold_recalibration_and_resets_health(
        self, step_trace, detector
    ):
        # threshold=10 parks Algorithm 1's own loop; the probe-loss faults
        # attach a DegradedModeController so the reset contract is live.
        sess = TraceSession(
            step_trace, time_step=8, threshold=10.0, regime=detector,
            faults="probe_loss=0.02", fault_seed=3,
        )
        assert isinstance(sess.health, DegradedModeController)
        for i in range(36):
            if sess.run_collective("broadcast", root=i % 6).regime == "shift":
                break
        else:
            pytest.fail(f"{detector} never classified the step as a shift")

        counters = sess.instrumentation.counters
        assert sess.stats.regime_shifts == 1
        assert sess.stats.recalibrations == 1  # the forced cold one
        assert counters["session.regime.cold_recalibration"] == 1
        assert counters["regime.forced_recalibrations"] == 1
        assert counters["regime.shift"] == 1
        assert counters.get("engine.solve.cold", 0) >= 2  # boot + forced
        # The cold path records a success with the health controller, so
        # the staleness clock restarts at the new component.
        assert sess.health_state is HealthState.HEALTHY
        assert sess.health.staleness == 0
        # And the detector re-warms: the residual level changed meaning.
        assert not sess.regime_detector.warmed_up


class TestBackwardCompatibility:
    def test_fault_free_session_has_no_resilience_machinery(self, replay_trace):
        sess = TraceSession(replay_trace, time_step=10)
        assert sess.health is None
        assert sess.health_state is HealthState.HEALTHY
        assert sess.health_transitions == []
        assert sess.staleness == 0
        assert sess.fault_events == ()
        rec = sess.run_collective("broadcast", root=0)
        assert rec.health == "healthy"
        assert sess.stats.failed_recalibrations == 0
        assert sess.stats.deferred_recalibrations == 0
        assert sess.stats.holdover_operations == 0

    def test_fault_free_results_unchanged_by_resilience_config(self, replay_trace):
        plain = TraceSession(replay_trace, time_step=10, threshold=0.1)
        resilient = TraceSession(
            replay_trace, time_step=10, threshold=0.1,
            resilience=ResilienceConfig(),
        )
        for _ in range(20):
            plain.run_collective("broadcast", root=0)
            resilient.run_collective("broadcast", root=0)
        assert (
            plain.stats.communication_seconds
            == resilient.stats.communication_seconds
        )
        assert plain.stats.recalibrations == resilient.stats.recalibrations
