"""Trace persistence: ``.npz`` archives plus CSV import of real measurements.

Calibration campaigns are expensive (the paper's took a week on EC2), so
traces are first-class artifacts: generated or measured once, replayed many
times. The binary format is a compressed numpy archive with a format
version; :func:`load_trace_csv` ingests real ping-pong measurement logs
(one row per probe) so the whole pipeline — decomposition, stability
verdicts, strategy comparison — runs on actual cluster data.
"""

from __future__ import annotations

import csv
import os

import numpy as np

from ..errors import ValidationError
from .trace import CalibrationTrace

__all__ = ["save_trace", "load_trace", "load_trace_csv", "TRACE_FORMAT_VERSION"]

TRACE_FORMAT_VERSION = 1


def save_trace(trace: CalibrationTrace, path: str | os.PathLike) -> None:
    """Write *trace* to *path* as a compressed ``.npz`` archive."""
    np.savez_compressed(
        os.fspath(path),
        format_version=np.int64(TRACE_FORMAT_VERSION),
        alpha=trace.alpha,
        beta=trace.beta,
        timestamps=trace.timestamps,
    )


def load_trace(path: str | os.PathLike) -> CalibrationTrace:
    """Read a trace written by :func:`save_trace`.

    Raises
    ------
    ValidationError
        If the file is missing required arrays or has an unknown format
        version.
    """
    with np.load(os.fspath(path)) as data:
        missing = {"format_version", "alpha", "beta", "timestamps"} - set(data.files)
        if missing:
            raise ValidationError(f"trace file missing arrays: {sorted(missing)}")
        version = int(data["format_version"])
        if version != TRACE_FORMAT_VERSION:
            raise ValidationError(
                f"unsupported trace format version {version} "
                f"(expected {TRACE_FORMAT_VERSION})"
            )
        return CalibrationTrace(
            alpha=data["alpha"].copy(),
            beta=data["beta"].copy(),
            timestamps=data["timestamps"].copy(),
        )


#: Required CSV header for :func:`load_trace_csv`.
CSV_COLUMNS = ("snapshot", "src", "dst", "alpha_s", "beta_Bps")


def load_trace_csv(path: str | os.PathLike) -> CalibrationTrace:
    """Build a trace from a CSV log of real ping-pong measurements.

    Expected columns (header required): ``snapshot`` (0-based calibration
    round index), ``src``, ``dst`` (machine indices), ``alpha_s`` (latency,
    seconds), ``beta_Bps`` (bandwidth, bytes/second). Optionally a
    ``timestamp`` column gives each snapshot's wall-clock second (the
    snapshot's first occurrence wins; defaults to the snapshot index).

    Every ordered off-diagonal pair must be measured in every snapshot —
    the paper's optimizations need the *all-link* matrix, so a partial
    log is an error, not something to silently impute.
    """
    rows: list[dict[str, str]] = []
    with open(os.fspath(path), newline="", encoding="utf-8") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or not set(CSV_COLUMNS) <= set(reader.fieldnames):
            raise ValidationError(
                f"CSV must have columns {CSV_COLUMNS}, got {reader.fieldnames}"
            )
        rows = list(reader)
    if not rows:
        raise ValidationError("CSV contains no measurements")

    try:
        snaps = np.array([int(r["snapshot"]) for r in rows])
        srcs = np.array([int(r["src"]) for r in rows])
        dsts = np.array([int(r["dst"]) for r in rows])
        alphas = np.array([float(r["alpha_s"]) for r in rows])
        betas = np.array([float(r["beta_Bps"]) for r in rows])
    except (KeyError, ValueError) as exc:
        raise ValidationError(f"malformed CSV row: {exc}") from exc

    if snaps.min() < 0 or srcs.min() < 0 or dsts.min() < 0:
        raise ValidationError("snapshot and machine indices must be non-negative")
    if np.any(srcs == dsts):
        raise ValidationError("self-measurements (src == dst) are not allowed")
    if np.any(alphas < 0) or np.any(betas <= 0):
        raise ValidationError("need alpha_s >= 0 and beta_Bps > 0")

    n = int(max(srcs.max(), dsts.max())) + 1
    t = int(snaps.max()) + 1
    alpha = np.full((t, n, n), np.nan)
    beta = np.full((t, n, n), np.nan)
    alpha[snaps, srcs, dsts] = alphas
    beta[snaps, srcs, dsts] = betas

    timestamps = np.arange(t, dtype=np.float64)
    if "timestamp" in rows[0]:
        for r in rows:
            k = int(r["snapshot"])
            if np.isnan(timestamps[k]) or timestamps[k] == float(k):
                timestamps[k] = float(r["timestamp"])

    off = ~np.eye(n, dtype=bool)
    missing = np.isnan(beta[:, off]).sum()
    if missing:
        raise ValidationError(
            f"CSV is missing {int(missing)} of {t * n * (n - 1)} ordered-pair "
            "measurements; the all-link matrix must be complete"
        )
    for k in range(t):
        np.fill_diagonal(alpha[k], 0.0)
        np.fill_diagonal(beta[k], np.inf)
    order = np.argsort(timestamps, kind="stable")
    return CalibrationTrace(
        alpha=alpha[order], beta=beta[order], timestamps=timestamps[order]
    )
