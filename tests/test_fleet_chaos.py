"""End-to-end chaos tests: SIGKILL real fleet workers, require parity.

Thin pytest wrappers over :mod:`repro.fleet.chaos` — the same scenarios the
CI ``fleet-chaos`` job runs via ``python -m repro.fleet.chaos``. The harness
owns the assertions' substance (kill observed, restart observed, surviving
report bit-identical to serial); the tests here pin its contract.
"""

import json

import pytest

from repro.fleet.chaos import run_chaos, run_degraded

pytestmark = [pytest.mark.fleet, pytest.mark.chaos]


@pytest.mark.parametrize("mode", ["run", "sweep"])
def test_kill_one_worker_mid_flight(mode):
    result = run_chaos(mode, seed=1, kills=1)
    assert result.kills >= 1, "the killer never found a worker to SIGKILL"
    assert result.restarts >= 1, "the scheduler never noticed the corpse"
    assert result.parity, f"survivor diverged: max |dP_D|={result.max_abs_diff:.3e}"
    assert not result.degraded
    assert result.passed


def test_degrade_quarantines_sick_cluster():
    result = run_degraded(seed=1)
    assert result.passed
    assert result.statuses["sick"] == "quarantined"
    assert all(s == "ok" for name, s in result.statuses.items() if name != "sick")
    assert result.health["clusters_quarantined"] >= 1


def test_summary_is_json_safe():
    result = run_degraded(seed=2)
    decoded = json.loads(json.dumps(result.summary()))
    assert decoded["scenario"] == "degrade"
    assert decoded["passed"] is True
    assert decoded["statuses"]["sick"] == "quarantined"
