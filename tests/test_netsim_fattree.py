"""Unit tests for the fat-tree topology and its simulator integration."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.netsim.fattree import FatTreeTopology
from repro.netsim.simulator import FlowSimulator

MB = 1024 * 1024


class TestGeometry:
    def test_k4_counts(self):
        t = FatTreeTopology(k=4)
        assert t.n_machines == 16
        assert t.n_edge_pairs == 16
        assert t.n_core_pairs == 16
        assert t.n_links == 2 * 16 + 2 * 16 + 2 * 16

    def test_k6_machine_count(self):
        assert FatTreeTopology(k=6).n_machines == 54

    def test_odd_k_rejected(self):
        with pytest.raises(TopologyError):
            FatTreeTopology(k=3)

    def test_pod_and_edge_assignment(self):
        t = FatTreeTopology(k=4)
        assert t.pod_of(0) == 0 and t.pod_of(15) == 3
        assert t.edge_of(0) == 0 and t.edge_of(2) == 1

    def test_link_ids_distinct(self):
        t = FatTreeTopology(k=4)
        ids = set()
        for m in range(t.n_machines):
            ids.add(t.host_up(m))
            ids.add(t.host_down(m))
        for pod in range(4):
            for e in range(2):
                for a in range(2):
                    ids.add(t.edge_agg_up(pod, e, a))
                    ids.add(t.agg_edge_down(pod, e, a))
        for pod in range(4):
            for a in range(2):
                for p in range(2):
                    ids.add(t.agg_core_up(pod, a, p))
                    ids.add(t.core_agg_down(pod, a, p))
        assert len(ids) == t.n_links
        assert ids == set(range(t.n_links))


class TestRouting:
    def test_same_edge_two_hops(self):
        t = FatTreeTopology(k=4)
        assert len(t.path(0, 1)) == 2

    def test_same_pod_four_hops(self):
        t = FatTreeTopology(k=4)
        assert len(t.path(0, 2)) == 4

    def test_cross_pod_six_hops(self):
        t = FatTreeTopology(k=4)
        assert len(t.path(0, 15)) == 6

    def test_paths_deterministic(self):
        t = FatTreeTopology(k=4, seed=9)
        assert t.path(0, 15) == t.path(0, 15)

    def test_ecmp_spreads_pairs(self):
        t = FatTreeTopology(k=4)
        # Different destination pairs should not all share one core choice.
        cores = {t.path(0, d)[2] for d in range(8, 16)}
        assert len(cores) > 1

    def test_path_links_in_range(self):
        t = FatTreeTopology(k=6)
        rng = np.random.default_rng(0)
        for _ in range(50):
            s, d = rng.choice(t.n_machines, size=2, replace=False)
            for l in t.path(int(s), int(d)):
                assert 0 <= l < t.n_links

    def test_self_path_rejected(self):
        with pytest.raises(TopologyError):
            FatTreeTopology(k=4).path(3, 3)


class TestSimulatorIntegration:
    def test_single_flow_full_rate(self):
        t = FatTreeTopology(k=4)
        sim = FlowSimulator(t)
        sim.schedule_flow(0.0, 0, 15, t.link_bandwidth)  # 1 second of data
        sim.run_until_idle(horizon=10)
        (rec,) = sim.completed
        assert rec.duration == pytest.approx(1.0 + t.path_latency(0, 15))

    def test_full_bisection_no_core_contention(self):
        # One flow per host into a distinct host of another pod, on distinct
        # core paths where ECMP allows: with full bisection bandwidth the
        # slowdown relative to an idle transfer must stay small.
        t = FatTreeTopology(k=4)
        sim = FlowSimulator(t)
        pairs = [(m, (m + 4) % 16) for m in range(4)]
        for s, d in pairs:
            sim.schedule_flow(0.0, s, d, t.link_bandwidth)
        sim.run_until_idle(horizon=20)
        durations = [r.duration for r in sim.completed]
        # Ideal is ~1s; ECMP collisions can halve a flow at worst here.
        assert max(durations) < 2.5

    def test_host_link_contention_still_applies(self):
        t = FatTreeTopology(k=4)
        sim = FlowSimulator(t)
        sim.schedule_flow(0.0, 0, 2, t.link_bandwidth)
        sim.schedule_flow(0.0, 0, 3, t.link_bandwidth)
        sim.run_until_idle(horizon=20)
        for rec in sim.completed:
            assert rec.end_time == pytest.approx(2.0, abs=1e-2)
