"""Execution-time breakdown and the profile runner (paper Sec V-D2).

The paper splits application time into **computation**, **communication**
and **other overheads** (calibration + RPCA, charged only to the strategies
that perform them). :class:`AppRunner` executes a list of
:class:`StepProfile` steps against a strategy-built communication tree,
pricing every collective on the live (α, β) snapshot of the moment; the
all-to-all of both applications is implemented "with a gather followed by a
broadcast, which is also used in MPICH2".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import check_nonnegative
from ..cloudsim.trace import CalibrationTrace
from ..collectives.exec_model import collective_time
from ..collectives.operations import build_tree
from ..errors import ValidationError
from ..strategies.base import Strategy

__all__ = ["TimeBreakdown", "StepProfile", "AppRunner"]


@dataclass(frozen=True, slots=True)
class TimeBreakdown:
    """Computation / communication / overhead split of one run."""

    computation: float
    communication: float
    overhead: float

    @property
    def total(self) -> float:
        return self.computation + self.communication + self.overhead

    def __add__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        return TimeBreakdown(
            computation=self.computation + other.computation,
            communication=self.communication + other.communication,
            overhead=self.overhead + other.overhead,
        )


@dataclass(frozen=True, slots=True)
class StepProfile:
    """One application step: its collectives and its local computation.

    ``collectives`` is a tuple of ``(op_name, nbytes)`` pairs executed in
    order (for scatter/gather *nbytes* is the per-node block size).
    """

    collectives: tuple[tuple[str, float], ...]
    computation_seconds: float

    def __post_init__(self) -> None:
        check_nonnegative(self.computation_seconds, "computation_seconds")
        for op, nbytes in self.collectives:
            if op not in ("broadcast", "scatter", "reduce", "gather"):
                raise ValidationError(f"unknown collective {op!r}")
            check_nonnegative(nbytes, "nbytes")


@dataclass
class AppRunner:
    """Execute a step profile for one strategy over a replay trace.

    Parameters
    ----------
    trace:
        Live network ground truth; step *i* is priced on snapshot
        ``i mod n_snapshots`` (application steps are far denser in time than
        calibration snapshots, so consecutive steps sharing a snapshot is
        the right granularity).
    strategy:
        The comparison arm. ``fit`` must already have been called for
        estimate-carrying strategies.
    root:
        Root machine of the collectives.
    calibration_overhead:
        Seconds charged as overhead for strategies that calibrated.
    analysis_overhead:
        Seconds charged for estimate computation (RPCA solve, etc.).
    """

    trace: CalibrationTrace
    strategy: Strategy
    root: int = 0
    calibration_overhead: float = 0.0
    analysis_overhead: float = 0.0
    _tree_cache: dict[int, object] = field(default_factory=dict, init=False, repr=False)

    def _tree(self) -> object:
        key = 0
        if key not in self._tree_cache:
            weights = self.strategy.weight_matrix() if self.strategy.is_network_aware else None
            self._tree_cache[key] = build_tree(
                self.trace.n_machines,
                self.root,
                algorithm=self.strategy.tree_algorithm,
                weights=weights,
            )
        return self._tree_cache[key]

    def run(self, steps: list[StepProfile], *, start_snapshot: int = 0) -> TimeBreakdown:
        """Price every step; returns the accumulated breakdown."""
        if not steps:
            raise ValidationError("steps must be non-empty")
        tree = self._tree()
        t = self.trace
        comp = 0.0
        comm = 0.0
        n_snap = t.n_snapshots
        for i, step in enumerate(steps):
            k = (start_snapshot + i) % n_snap
            alpha = t.alpha[k]
            beta = t.beta[k]
            comp += step.computation_seconds
            for op, nbytes in step.collectives:
                comm += collective_time(op, tree, alpha, beta, nbytes)  # type: ignore[arg-type]
        overhead = 0.0
        if self.strategy.is_network_aware:
            overhead = self.calibration_overhead + self.analysis_overhead
        return TimeBreakdown(computation=comp, communication=comm, overhead=overhead)


def alltoall_collectives(total_bytes: float, n_machines: int) -> tuple[tuple[str, float], ...]:
    """The paper's all-to-all: a gather of per-node blocks then a broadcast.

    *total_bytes* is the full exchanged payload; the gather moves per-node
    blocks of ``total_bytes / n_machines``.
    """
    if n_machines < 1:
        raise ValidationError("n_machines must be >= 1")
    block = float(total_bytes) / float(n_machines)
    return (("gather", block), ("broadcast", float(total_bytes)))
