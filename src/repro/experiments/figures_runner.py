"""One-shot figure runner: regenerate every paper figure at a chosen scale.

Backs the ``repro figures`` CLI command. ``quick`` scale finishes in well
under a minute and shows every qualitative shape; ``paper`` scale matches
the benchmark suite's configurations (minutes). The netsim figures (12-13)
are the slow ones and are opt-in at quick scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..cloudsim.tracegen import TraceConfig, generate_trace
from ..netsim.background import BackgroundConfig
from ..netsim.topology import GBIT
from . import (
    fig04_overhead,
    fig05_time_step,
    fig06_threshold,
    fig07_overall_ec2,
    fig08_cluster_size,
    fig09_apps,
    fig10_ne_impact,
    fig11_ne02,
    fig12_interference,
    fig13_simulation,
)
from .report import format_series, format_table

__all__ = ["run_all_figures", "FigureReport"]

MB = 1024 * 1024


@dataclass(frozen=True, slots=True)
class FigureReport:
    """One regenerated figure: its id and rendered table."""

    figure: str
    text: str


def _scale_params(scale: str) -> dict:
    if scale == "quick":
        return dict(n_machines=16, n_snapshots=24, repetitions=24, time_step=8)
    if scale == "paper":
        return dict(n_machines=64, n_snapshots=30, repetitions=100, time_step=10)
    raise ValueError(f"scale must be 'quick' or 'paper', got {scale!r}")


def run_all_figures(
    *,
    scale: str = "quick",
    include_simulation: bool = False,
    seed: int = 2014,
    emit: Callable[[str], None] | None = None,
) -> list[FigureReport]:
    """Regenerate Figs 4-11 (and optionally 12-13) and return their tables.

    Parameters
    ----------
    scale:
        ``"quick"`` or ``"paper"``.
    include_simulation:
        Also run the netsim figures (slower).
    seed:
        Master seed.
    emit:
        Optional sink called with each table as it is produced (the CLI
        passes ``print`` for streaming output).
    """
    p = _scale_params(scale)
    reports: list[FigureReport] = []

    def add(figure: str, text: str) -> None:
        reports.append(FigureReport(figure=figure, text=text))
        if emit is not None:
            emit(text + "\n")

    trace = generate_trace(
        TraceConfig(n_machines=p["n_machines"], n_snapshots=p["n_snapshots"]),
        seed=seed,
    )

    r4 = fig04_overhead.run()
    add("fig04", format_table(
        ["instances", "seconds", "minutes", "rounds"], r4.as_rows(),
        title="Fig 4: calibration overhead (time step = 10)",
    ))

    r5 = fig05_time_step.run(
        trace, time_steps=(2, 4, 6, 8, 10, 15, 20), solver="row_constant"
    )
    add("fig05", format_series(
        "time step", "relative difference", r5.as_rows(),
        title=f"Fig 5 (selected step: {r5.selected})",
    ))

    r6 = fig06_threshold.run(
        trace,
        thresholds=(0.2, 1.0, 5.0),
        time_step=p["time_step"],
        calibration_cost=45.0,
        collectives_per_operation=40,
        seed=seed,
    )
    add("fig06", format_table(
        ["threshold", "avg total (s)", "avg comm (s)", "avg overhead (s)", "recals"],
        r6.as_rows(),
        title="Fig 6: maintenance threshold",
    ))

    r7 = fig07_overall_ec2.run(
        trace,
        time_step=p["time_step"],
        repetitions=p["repetitions"],
        solver="row_constant" if scale == "quick" else "apg",
        seed=seed,
    )
    add("fig07", format_table(
        ["strategy", "broadcast", "scatter", "mapping"],
        r7.normalized_table(),
        title=f"Fig 7: normalized means (Norm(N_E) = {r7.norm_ne:.3f})",
    ))

    r8 = fig08_cluster_size.run(
        cluster_sizes=(16, 48) if scale == "quick" else (64, 196),
        message_sizes=(8.0 * MB,),
        n_snapshots=p["n_snapshots"],
        time_step=p["time_step"],
        repetitions=p["repetitions"],
        solver="row_constant" if scale == "quick" else "apg",
        colocation=1.0,
        seed=seed,
    )
    add("fig08", format_table(
        ["instances", "message (MB)", "improvement"], r8.as_rows(),
        title="Fig 8: improvement vs cluster size",
    ))

    r9 = fig09_apps.run_cg(
        trace,
        vector_sizes=(8000, 256000),
        time_step=p["time_step"],
        solver="row_constant" if scale == "quick" else "apg",
        seed=seed,
    )
    add("fig09", format_table(
        ["vector size", "strategy", "comp", "comm", "overhead", "total"],
        r9.as_rows(),
        title="Fig 9a: CG breakdown",
    ))

    r10 = fig10_ne_impact.run(
        trace,
        targets=(0.2, 0.4) if scale == "quick" else (0.05, 0.1, 0.2, 0.3, 0.5),
        repetitions=p["repetitions"],
        solver="row_constant" if scale == "quick" else "apg",
        seed=seed,
    )
    add("fig10", format_table(
        ["Norm(N_E)", "bcast", "scatter", "mapping", "bcast vs Heur"],
        r10.as_rows(),
        title="Fig 10: improvement vs Norm(N_E)",
    ))

    r11 = fig11_ne02.run(
        trace,
        repetitions=p["repetitions"],
        solver="row_constant" if scale == "quick" else "apg",
        seed=seed,
    )
    add("fig11", format_table(
        ["strategy", "broadcast", "scatter", "mapping"],
        r11.comparison.normalized_table(),
        title=f"Fig 11: Norm(N_E) = {r11.achieved_norm_ne:.3f}",
    ))

    if include_simulation:
        geom = (
            dict(n_racks=4, servers_per_rack=8, cluster_size=10,
                 core_bandwidth=2.5 * GBIT, n_snapshots=6, gap_seconds=10.0)
            if scale == "quick"
            else dict(n_racks=16, servers_per_rack=16, cluster_size=24,
                      core_bandwidth=5.0 * GBIT, n_snapshots=8, gap_seconds=20.0)
        )
        r12 = fig12_interference.run_lambda_sweep(
            lambdas=(1.0, 10.0), n_pairs=24 if scale == "quick" else 96,
            seed=seed, **geom,
        )
        add("fig12", format_series(
            "lambda (s)", "Norm(N_E)", r12.as_rows(),
            title="Fig 12a: interference frequency vs Norm(N_E)",
        ))

        r13 = fig13_simulation.run(
            n_racks=geom["n_racks"],
            servers_per_rack=geom["servers_per_rack"],
            cluster_size=geom["cluster_size"] + 2,
            background=BackgroundConfig(
                n_pairs=64 if scale == "quick" else 160,
                message_bytes=100 * MB,
                mean_wait_seconds=1.0,
            ),
            n_snapshots=10 if scale == "quick" else 20,
            time_step=5 if scale == "quick" else 10,
            gap_seconds=geom["gap_seconds"],
            repetitions=p["repetitions"],
            solver="row_constant" if scale == "quick" else "apg",
            core_bandwidth=geom["core_bandwidth"],
            seed=seed,
        )
        add("fig13", format_table(
            ["strategy", "broadcast", "scatter", "mapping"],
            r13.normalized_table(),
            title=f"Fig 13: simulator, Norm(N_E) = {r13.norm_ne:.3f}",
        ))

    return reports
