"""Update maintenance — paper Algorithm 1 lines 4–9.

After decomposing a calibration into a constant component, the approach
keeps using that component until the *real* performance ``t`` of the guided
operation deviates from the *expected* performance ``t'`` (predicted from the
constant component under the α-β model) by more than a relative threshold:

    |t − t'| / t' ≥ threshold   →   re-calibrate, re-run RPCA.

:class:`MaintenanceController` encapsulates this feedback loop as a pure
state machine: callers report ``(expected, observed)`` pairs and receive a
:class:`MaintenanceDecision`; the controller never performs measurements
itself, so it composes with any substrate (live trace replay, netsim, real
MPI). The paper's default threshold is 100% (Fig 6 shows ≈100% is the sweet
spot: below ~20% the loop thrashes, above ~150% it never re-calibrates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from .._validation import check_nonnegative, check_positive, check_probability

__all__ = [
    "MaintenanceDecision",
    "MaintenanceController",
    "MaintenanceStats",
    "HealthState",
    "HealthTransition",
    "ResilienceConfig",
    "DegradedModeController",
    "RegimeVerdict",
    "RegimeConfig",
    "CusumRegimeDetector",
]


class MaintenanceDecision(Enum):
    """What the controller tells the caller to do next."""

    KEEP = "keep"  # constant component still valid; reuse it
    RECALIBRATE = "recalibrate"  # significant change detected; re-measure


@dataclass
class MaintenanceStats:
    """Running counters over the controller's lifetime."""

    observations: int = 0
    recalibrations: int = 0
    max_relative_deviation: float = 0.0
    deviations: list[float] = field(default_factory=list)


class MaintenanceController:
    """Threshold-based change detector for the constant component.

    Parameters
    ----------
    threshold:
        Relative deviation that counts as a *significant change*; the
        paper's default is 1.0 (i.e. 100%).
    consecutive:
        Number of consecutive above-threshold observations required before
        signalling recalibration. The paper uses 1 (every deviation
        triggers); values > 1 debounce one-off spikes and are used in the
        ablation benches.

    Examples
    --------
    >>> c = MaintenanceController(threshold=1.0)
    >>> c.observe(expected=1.0, observed=1.5)
    <MaintenanceDecision.KEEP: 'keep'>
    >>> c.observe(expected=1.0, observed=2.5)
    <MaintenanceDecision.RECALIBRATE: 'recalibrate'>
    """

    def __init__(self, threshold: float = 1.0, *, consecutive: int = 1) -> None:
        self.threshold = check_positive(threshold, "threshold")
        if int(consecutive) < 1:
            raise ValueError("consecutive must be >= 1")
        self.consecutive = int(consecutive)
        self._streak = 0
        self.stats = MaintenanceStats()

    def relative_deviation(self, expected: float, observed: float) -> float:
        """``|t − t'| / t'`` — the paper's deviation measure."""
        check_positive(expected, "expected")
        check_nonnegative(observed, "observed")
        return abs(observed - expected) / expected

    def observe(self, expected: float, observed: float) -> MaintenanceDecision:
        """Feed one (expected, observed) pair; get the next action.

        A ``RECALIBRATE`` decision resets the internal streak — the caller is
        assumed to re-calibrate before the next observation.
        """
        dev = self.relative_deviation(expected, observed)
        self.stats.observations += 1
        self.stats.deviations.append(dev)
        if dev > self.stats.max_relative_deviation:
            self.stats.max_relative_deviation = dev
        if dev >= self.threshold:
            self._streak += 1
        else:
            self._streak = 0
        if self._streak >= self.consecutive:
            self._streak = 0
            self.stats.recalibrations += 1
            return MaintenanceDecision.RECALIBRATE
        return MaintenanceDecision.KEEP

    def reset(self) -> None:
        """Clear streak state (counters in :attr:`stats` are preserved)."""
        self._streak = 0

    # -- persistence -------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the controller's mutable state."""
        return {
            "streak": self._streak,
            "observations": self.stats.observations,
            "recalibrations": self.stats.recalibrations,
            "max_relative_deviation": self.stats.max_relative_deviation,
            "deviations": list(self.stats.deviations),
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Inverse of :meth:`state_dict` (thresholds come from ``__init__``)."""
        self._streak = int(state["streak"])
        self.stats.observations = int(state["observations"])
        self.stats.recalibrations = int(state["recalibrations"])
        self.stats.max_relative_deviation = float(state["max_relative_deviation"])
        self.stats.deviations = [float(d) for d in state["deviations"]]


class HealthState(Enum):
    """Calibration-plane health of an adaptive session.

    Algorithm 1 assumes re-calibration always succeeds; under injected (or
    real) measurement faults it can fail — too few probes answered, RPCA
    budget exhausted. The session then keeps optimizing on the *last good*
    constant component while retrying with backoff:

    * ``HEALTHY`` — the current constant component comes from a successful,
      sufficiently complete calibration.
    * ``DEGRADED`` — at least one re-calibration attempt failed; the stale
      constant component is still in use and retries are being paced.
    * ``HOLDOVER`` — failures have persisted past the configured limit; the
      session has settled on the stale component (clock-discipline style
      holdover) and retries continue at the maximum backoff.
    """

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    HOLDOVER = "holdover"


@dataclass(frozen=True, slots=True)
class HealthTransition:
    """One edge of the health state machine, for post-hoc inspection."""

    operation: int
    previous: HealthState
    state: HealthState
    reason: str


@dataclass(frozen=True)
class ResilienceConfig:
    """Tunables for fault-tolerant calibration and degraded-mode operation.

    Attributes
    ----------
    max_probe_retries:
        How many times a failed probe is re-attempted within one snapshot
        measurement (transient faults re-roll per attempt).
    retry_backoff_seconds:
        Wall-clock cost charged for the first probe retry wave; each further
        wave doubles it (exponential backoff, accounted as overhead).
    min_snapshot_observed:
        Minimum off-diagonal observed fraction per snapshot for a
        calibration window to be accepted (see
        :class:`~repro.core.engine.DecompositionEngine`).
    min_window_observed:
        Same threshold for the window as a whole.
    recal_backoff_operations:
        Operations to wait after the first failed re-calibration before the
        next attempt.
    recal_backoff_factor:
        Growth factor of the wait after each consecutive failure.
    recal_backoff_max:
        Cap on the wait, in operations.
    holdover_after:
        Consecutive failed re-calibrations before ``DEGRADED`` becomes
        ``HOLDOVER``.
    strict_convergence:
        Ask the solver to raise
        :class:`~repro.errors.ConvergenceError` on budget exhaustion (when
        it supports ``raise_on_fail``) so a non-converged solve is treated
        as a calibration failure instead of silently trusted.
    """

    max_probe_retries: int = 2
    retry_backoff_seconds: float = 0.5
    min_snapshot_observed: float = 0.8
    min_window_observed: float = 0.5
    recal_backoff_operations: int = 1
    recal_backoff_factor: float = 2.0
    recal_backoff_max: int = 8
    holdover_after: int = 3
    strict_convergence: bool = True

    def __post_init__(self) -> None:
        if int(self.max_probe_retries) < 0:
            raise ValueError("max_probe_retries must be >= 0")
        check_nonnegative(self.retry_backoff_seconds, "retry_backoff_seconds")
        check_probability(self.min_snapshot_observed, "min_snapshot_observed")
        check_probability(self.min_window_observed, "min_window_observed")
        if int(self.recal_backoff_operations) < 0:
            raise ValueError("recal_backoff_operations must be >= 0")
        if float(self.recal_backoff_factor) < 1.0:
            raise ValueError("recal_backoff_factor must be >= 1")
        if int(self.recal_backoff_max) < int(self.recal_backoff_operations):
            raise ValueError("recal_backoff_max must be >= recal_backoff_operations")
        if int(self.holdover_after) < 1:
            raise ValueError("holdover_after must be >= 1")

    def backoff_operations(self, failures: int) -> int:
        """Operations to wait after the *failures*-th consecutive failure."""
        if failures <= 0:
            return 0
        wait = float(self.recal_backoff_operations) * (
            float(self.recal_backoff_factor) ** (failures - 1)
        )
        return int(min(wait, float(self.recal_backoff_max)))


class DegradedModeController:
    """HEALTHY → DEGRADED → HOLDOVER state machine over calibration outcomes.

    The session reports each re-calibration attempt's outcome and ticks the
    controller once per executed operation; the controller paces retry
    attempts (exponential backoff measured in operations) and accounts for
    staleness — how many operations have run on the current constant
    component since it was last refreshed.
    """

    def __init__(self, config: ResilienceConfig | None = None) -> None:
        self.config = config if config is not None else ResilienceConfig()
        self.state = HealthState.HEALTHY
        self.consecutive_failures = 0
        self.staleness = 0  # operations since the last successful calibration
        self.max_staleness = 0
        self._cooldown = 0  # operations until the next retry is allowed
        self.transitions: list[HealthTransition] = []
        self._operation = 0

    @property
    def healthy(self) -> bool:
        return self.state is HealthState.HEALTHY

    def tick(self) -> None:
        """Advance by one executed operation (staleness + backoff clocks)."""
        self._operation += 1
        self.staleness += 1
        if self.staleness > self.max_staleness:
            self.max_staleness = self.staleness
        if self._cooldown > 0:
            self._cooldown -= 1

    def should_attempt(self) -> bool:
        """Whether a re-calibration attempt is allowed right now."""
        return self._cooldown == 0

    def _transition(self, state: HealthState, reason: str) -> None:
        if state is not self.state:
            self.transitions.append(
                HealthTransition(
                    operation=self._operation,
                    previous=self.state,
                    state=state,
                    reason=reason,
                )
            )
            self.state = state

    def record_success(self) -> None:
        """A calibration succeeded: back to HEALTHY, clocks reset."""
        self.consecutive_failures = 0
        self._cooldown = 0
        self.staleness = 0
        self._transition(HealthState.HEALTHY, "calibration succeeded")

    def record_failure(self, error: BaseException | str) -> None:
        """A calibration attempt failed: degrade and push out the next retry."""
        self.consecutive_failures += 1
        self._cooldown = self.config.backoff_operations(self.consecutive_failures)
        target = (
            HealthState.HOLDOVER
            if self.consecutive_failures >= self.config.holdover_after
            else HealthState.DEGRADED
        )
        self._transition(target, str(error))

    # -- persistence -------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the health machine's mutable state."""
        return {
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "staleness": self.staleness,
            "max_staleness": self.max_staleness,
            "cooldown": self._cooldown,
            "operation": self._operation,
            "transitions": [
                {
                    "operation": t.operation,
                    "previous": t.previous.value,
                    "state": t.state.value,
                    "reason": t.reason,
                }
                for t in self.transitions
            ],
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Inverse of :meth:`state_dict` (config comes from ``__init__``)."""
        self.state = HealthState(state["state"])
        self.consecutive_failures = int(state["consecutive_failures"])
        self.staleness = int(state["staleness"])
        self.max_staleness = int(state["max_staleness"])
        self._cooldown = int(state["cooldown"])
        self._operation = int(state["operation"])
        self.transitions = [
            HealthTransition(
                operation=int(t["operation"]),
                previous=HealthState(t["previous"]),
                state=HealthState(t["state"]),
                reason=str(t["reason"]),
            )
            for t in state["transitions"]
        ]


class RegimeVerdict(Enum):
    """How the regime detector classifies one residual observation.

    Algorithm 1 treats every above-threshold deviation identically; the
    signature/change-point literature (Fattah et al.; Duplyakin et al.)
    distinguishes *transient spikes* — interference RPCA's sparse term is
    built to absorb, where the right move is to keep serving ``P_D`` — from
    *regime shifts*, where the constant component itself has moved and only
    a full cold re-calibration helps.
    """

    STABLE = "stable"  # residual consistent with the learned baseline
    SPIKE = "spike"  # one-off excursion; keep serving P_D
    SHIFT = "shift"  # sustained level change; re-calibrate cold


@dataclass(frozen=True)
class RegimeConfig:
    """Tunables of the CUSUM regime-shift detector.

    The detector standardizes each residual-norm observation against a
    baseline learned during *warmup* and accumulates a one-sided CUSUM
    statistic ``S ← max(0, S + min(z, spike_z) − drift)``. ``S ≥ decision``
    signals a regime shift; an instantaneous ``z ≥ spike_z`` that does not
    push ``S`` over the line is a transient spike. The winsorization (``z``
    clipped at ``spike_z`` before accumulating) is what makes the two
    distinguishable: one interference spike — however violent — contributes
    at most ``spike_z − drift`` to ``S``, so only *sustained* elevation
    across ``≈ decision / (spike_z − drift)`` consecutive operations can
    reach the decision interval.

    Attributes
    ----------
    drift:
        CUSUM slack per observation, in baseline standard deviations; the
        allowance subtracted before accumulating (larger = less sensitive
        to slow drift).
    decision:
        CUSUM decision interval ``h``, in baseline standard deviations.
    warmup:
        Observations used to learn the baseline mean and deviation before
        any classification happens (everything is ``STABLE`` during warmup).
    spike_z:
        Standardized residual that counts as a transient spike; also the
        winsorization cap on each observation's CUSUM contribution.
    min_rel_sigma:
        Floor on the baseline standard deviation as a fraction of the
        baseline mean — calm traces have near-zero residual variance, and
        an unfloored σ would turn measurement noise into shifts.
    """

    drift: float = 0.5
    decision: float = 8.0
    warmup: int = 6
    spike_z: float = 4.0
    min_rel_sigma: float = 0.1

    def __post_init__(self) -> None:
        check_nonnegative(self.drift, "drift")
        check_positive(self.decision, "decision")
        if int(self.warmup) < 2:
            raise ValueError("warmup must be >= 2 observations")
        check_positive(self.spike_z, "spike_z")
        check_positive(self.min_rel_sigma, "min_rel_sigma")
        if float(self.decision) <= float(self.spike_z) - float(self.drift):
            raise ValueError(
                "decision must exceed spike_z - drift, or a single "
                "winsorized spike could masquerade as a regime shift"
            )


class CusumRegimeDetector:
    """Online change-point detector over per-snapshot residual norms.

    Feed it one ``Norm(N_E)``-style residual per operation (the relative L1
    distance between the live snapshot and the constant component in
    service, see
    :meth:`~repro.core.engine.DecompositionEngine.snapshot_residual`) and it
    returns a :class:`RegimeVerdict`. A permanent band change keeps the
    residual elevated against a stale ``P_D``, so the CUSUM statistic ramps
    to the decision interval within a few operations; an equal-magnitude
    one-snapshot spike contributes once and decays.

    After signalling ``SHIFT`` the detector resets itself entirely — the
    caller re-calibrates cold, the residual level changes meaning, and a
    fresh baseline must be learned for the new regime.
    """

    def __init__(self, config: RegimeConfig | None = None) -> None:
        self.config = config if config is not None else RegimeConfig()
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._cusum = 0.0
        self.shifts = 0
        self.spikes = 0

    @property
    def warmed_up(self) -> bool:
        return self._count >= int(self.config.warmup)

    @property
    def cusum(self) -> float:
        """Current value of the one-sided CUSUM statistic (σ units)."""
        return self._cusum

    def _sigma(self) -> float:
        var = self._m2 / (self._count - 1) if self._count > 1 else 0.0
        sigma = math.sqrt(max(var, 0.0))
        floor = self.config.min_rel_sigma * abs(self._mean)
        return max(sigma, floor, 1e-12)

    def observe(self, value: float) -> RegimeVerdict:
        """Classify one residual observation."""
        x = float(value)
        if not math.isfinite(x):
            raise ValueError(f"residual observation must be finite, got {value!r}")
        if not self.warmed_up:
            # Welford accumulation of the baseline.
            self._count += 1
            delta = x - self._mean
            self._mean += delta / self._count
            self._m2 += delta * (x - self._mean)
            return RegimeVerdict.STABLE
        z = (x - self._mean) / self._sigma()
        # Winsorized accumulation: a lone outlier contributes at most
        # spike_z - drift, so it cannot reach the decision interval alone.
        self._cusum = max(
            0.0, self._cusum + min(z, self.config.spike_z) - self.config.drift
        )
        if self._cusum >= self.config.decision:
            self.shifts += 1
            self.reset()
            return RegimeVerdict.SHIFT
        if z >= self.config.spike_z:
            self.spikes += 1
            return RegimeVerdict.SPIKE
        return RegimeVerdict.STABLE

    def reset(self) -> None:
        """Forget baseline and CUSUM state; the next observations re-warm.

        Called internally after a shift; callers should also reset after any
        cold re-calibration they initiate themselves, since the residuals'
        reference level changes with the constant component.
        """
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._cusum = 0.0

    # -- persistence -------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the detector's mutable state."""
        return {
            "count": self._count,
            "mean": self._mean,
            "m2": self._m2,
            "cusum": self._cusum,
            "shifts": self.shifts,
            "spikes": self.spikes,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Inverse of :meth:`state_dict` (config comes from ``__init__``)."""
        self._count = int(state["count"])
        self._mean = float(state["mean"])
        self._m2 = float(state["m2"])
        self._cusum = float(state["cusum"])
        self.shifts = int(state["shifts"])
        self.spikes = int(state["spikes"])
