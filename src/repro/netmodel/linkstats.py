"""Per-link time-series statistics.

The paper's Appendix-A observation is that a link's repeated measurements
form "a clear band" (a stable central level) plus volatility that makes any
single sample unpredictable. These helpers quantify that structure for a
series of measurements of one link, and are used by trace generators (to
validate synthesized traces have the right shape) and by tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError

__all__ = ["LinkSeriesStats", "summarize_link_series"]


@dataclass(frozen=True, slots=True)
class LinkSeriesStats:
    """Summary of one link's measurement series.

    Attributes
    ----------
    center:
        Robust central level (median) — the "constant band" location.
    spread:
        Robust dispersion (median absolute deviation, scaled to be
        consistent with a Gaussian standard deviation).
    volatility:
        ``spread / center`` — relative width of the band.
    spike_fraction:
        Fraction of samples further than 3×spread from the center;
        captures the heavy-tail interference events.
    n_samples:
        Series length.
    """

    center: float
    spread: float
    volatility: float
    spike_fraction: float
    n_samples: int


# 1.4826 makes the MAD a consistent estimator of sigma for Gaussian data.
_MAD_SCALE = 1.4826


def summarize_link_series(samples: np.ndarray) -> LinkSeriesStats:
    """Compute :class:`LinkSeriesStats` for a 1-D series of measurements."""
    x = np.asarray(samples, dtype=np.float64).ravel()
    if x.size == 0:
        raise ValidationError("samples must be non-empty")
    if not np.all(np.isfinite(x)):
        raise ValidationError("samples contain non-finite values")
    center = float(np.median(x))
    mad = float(np.median(np.abs(x - center)))
    spread = _MAD_SCALE * mad
    volatility = spread / center if center != 0.0 else np.inf if spread else 0.0
    if spread > 0:
        spikes = float(np.mean(np.abs(x - center) > 3.0 * spread))
    else:
        spikes = float(np.mean(x != center))
    return LinkSeriesStats(
        center=center,
        spread=spread,
        volatility=float(volatility),
        spike_fraction=spikes,
        n_samples=int(x.size),
    )
