"""Unit tests for the four comparison strategies."""

import numpy as np
import pytest

from repro.cloudsim.bands import BandTiers
from repro.cloudsim.placement import Placement
from repro.core.maintenance import MaintenanceDecision
from repro.core.matrices import TPMatrix
from repro.errors import ValidationError
from repro.strategies.base import Strategy
from repro.strategies.baseline import BaselineStrategy
from repro.strategies.heuristics import HeuristicStrategy
from repro.strategies.rpca import RPCAStrategy
from repro.strategies.topology_aware import TopologyAwareStrategy

MB = 1024 * 1024


def make_tp(trace, nbytes=8 * MB, count=10):
    return trace.tp_matrix(nbytes, start=0, count=count)


class TestBaseline:
    def test_no_estimate(self, small_trace):
        s = BaselineStrategy()
        s.fit(make_tp(small_trace))
        assert s.weight_matrix() is None

    def test_not_network_aware(self):
        s = BaselineStrategy()
        assert not s.is_network_aware
        assert s.tree_algorithm == "binomial"
        assert s.mapping_algorithm == "ring"


class TestHeuristics:
    def test_mean_is_column_mean(self, small_trace):
        s = HeuristicStrategy("mean")
        tp = make_tp(small_trace)
        s.fit(tp)
        w = s.weight_matrix()
        expected = tp.data.mean(axis=0).reshape(8, 8)
        np.fill_diagonal(expected, 0.0)
        np.testing.assert_allclose(w, expected)

    def test_min_below_mean(self, small_trace):
        tp = make_tp(small_trace)
        m = HeuristicStrategy("mean")
        m.fit(tp)
        lo = HeuristicStrategy("min")
        lo.fit(tp)
        off = ~np.eye(8, dtype=bool)
        assert np.all(lo.weight_matrix()[off] <= m.weight_matrix()[off] + 1e-12)

    def test_ewma_weights_recent(self, small_trace):
        tp = make_tp(small_trace)
        s = HeuristicStrategy("ewma", ewma_alpha=0.9)
        s.fit(tp)
        w = s.weight_matrix().ravel()
        last = tp.data[-1]
        first = tp.data[0]
        off = last > 0
        # With alpha 0.9 the estimate hugs the last snapshot.
        assert np.abs(w[off] - last[off]).mean() < np.abs(w[off] - first[off]).mean()

    def test_percentile_kind(self, small_trace):
        tp = make_tp(small_trace)
        p50 = HeuristicStrategy("percentile", percentile=50.0)
        p50.fit(tp)
        expected = np.percentile(tp.data, 50.0, axis=0).reshape(8, 8)
        np.fill_diagonal(expected, 0.0)
        np.testing.assert_allclose(p50.weight_matrix(), expected)

    def test_percentile_ordering(self, small_trace):
        tp = make_tp(small_trace)
        lo = HeuristicStrategy("percentile", percentile=25.0)
        hi = HeuristicStrategy("percentile", percentile=90.0)
        lo.fit(tp)
        hi.fit(tp)
        off = ~np.eye(8, dtype=bool)
        assert np.all(lo.weight_matrix()[off] <= hi.weight_matrix()[off] + 1e-12)

    def test_percentile_validated(self):
        with pytest.raises(ValidationError):
            HeuristicStrategy("percentile", percentile=150.0)

    def test_unknown_kind(self):
        with pytest.raises(ValidationError):
            HeuristicStrategy("max")

    def test_fit_required(self):
        with pytest.raises(ValidationError, match="fit"):
            HeuristicStrategy("mean").weight_matrix()

    def test_names(self):
        assert HeuristicStrategy("mean").name == "Heuristics"
        assert HeuristicStrategy("min").name == "Heuristics-min"

    def test_is_network_aware(self):
        assert HeuristicStrategy("mean").is_network_aware


class TestRPCA:
    def test_fit_and_estimate(self, small_trace):
        s = RPCAStrategy("apg", time_step=10)
        s.fit(make_tp(small_trace, count=15))
        w = s.weight_matrix()
        assert w.shape == (8, 8)
        off = ~np.eye(8, dtype=bool)
        assert np.all(w[off] > 0)

    def test_time_step_uses_newest_rows(self, small_trace):
        tp = make_tp(small_trace, count=20)
        s_all = RPCAStrategy("row_constant", time_step=20)
        s_all.fit(tp)
        s_tail = RPCAStrategy("row_constant", time_step=5)
        s_tail.fit(tp)
        tail_tp = TPMatrix(
            data=tp.data[15:].copy(), n_machines=8, timestamps=tp.timestamps[15:].copy()
        )
        expected = np.median(tail_tp.data, axis=0).reshape(8, 8)
        off = ~np.eye(8, dtype=bool)
        got = s_tail.weight_matrix()
        np.testing.assert_allclose(got[off], expected[off])
        assert not np.allclose(s_all.weight_matrix()[off], got[off])

    def test_norm_ne_exposed(self, small_trace):
        s = RPCAStrategy("apg")
        s.fit(make_tp(small_trace))
        assert 0.0 < s.norm_ne < 1.0

    def test_observe_delegates_to_controller(self, small_trace):
        s = RPCAStrategy("apg", threshold=0.5)
        assert s.observe(1.0, 1.2) is MaintenanceDecision.KEEP
        assert s.observe(1.0, 2.0) is MaintenanceDecision.RECALIBRATE

    def test_fit_required(self):
        s = RPCAStrategy()
        with pytest.raises(ValidationError):
            s.weight_matrix()
        with pytest.raises(ValidationError):
            _ = s.norm_ne

    def test_name_defaults_and_override(self):
        assert RPCAStrategy("apg").name == "RPCA"
        assert RPCAStrategy("ialm").name == "RPCA"  # same arm, different solver
        assert RPCAStrategy("ialm", name="RPCA-ialm").name == "RPCA-ialm"

    def test_bad_time_step(self):
        with pytest.raises(ValidationError):
            RPCAStrategy(time_step=0)


class TestTopologyAware:
    def _placement(self):
        return Placement(
            racks=np.array([0, 0, 1, 1]), n_racks_total=4, servers_per_rack=4
        )

    def test_same_rack_preferred(self):
        s = TopologyAwareStrategy(self._placement(), nbytes=8 * MB)
        w = s.weight_matrix()
        assert w[0, 1] < w[0, 2]  # same rack beats cross rack

    def test_static_across_fits(self, small_trace):
        p = Placement(
            racks=np.arange(8) // 2, n_racks_total=8, servers_per_rack=4
        )
        s = TopologyAwareStrategy(p, nbytes=8 * MB)
        w1 = s.weight_matrix()
        s.fit(make_tp(small_trace))
        np.testing.assert_array_equal(w1, s.weight_matrix())

    def test_custom_tiers(self):
        tiers = BandTiers(
            same_rack_bandwidth=2e8,
            cross_rack_bandwidth=1e8,
            same_rack_latency=1e-4,
            cross_rack_latency=2e-4,
            jitter_sigma=0.0,
        )
        s = TopologyAwareStrategy(self._placement(), nbytes=1e8, tiers=tiers)
        w = s.weight_matrix()
        assert w[0, 1] == pytest.approx(1e-4 + 0.5)
        assert w[0, 2] == pytest.approx(2e-4 + 1.0)

    def test_is_network_aware(self):
        s = TopologyAwareStrategy(self._placement(), nbytes=1.0)
        assert s.is_network_aware


class TestStrategyProtocol:
    def test_all_are_strategies(self, small_trace):
        p = Placement(racks=np.array([0, 1]), n_racks_total=2, servers_per_rack=2)
        arms = [
            BaselineStrategy(),
            HeuristicStrategy("mean"),
            RPCAStrategy("row_constant"),
            TopologyAwareStrategy(p, nbytes=1.0),
        ]
        for arm in arms:
            assert isinstance(arm, Strategy)
            assert arm.tree_algorithm in ("binomial", "fnf")
            assert arm.mapping_algorithm in ("ring", "greedy")
