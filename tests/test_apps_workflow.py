"""Unit tests for the scientific-workflow extension."""

import numpy as np
import pytest

from repro.apps.workflow import (
    Workflow,
    WorkflowStage,
    montage_like_workflow,
    workflow_makespan,
)
from repro.errors import ValidationError
from repro.mapping.evaluate import bandwidth_from_weights
from repro.mapping.greedy import greedy_mapping

MB = 1024 * 1024


def uniform_net(n, beta=100 * MB):
    a = np.zeros((n, n))
    b = np.full((n, n), float(beta))
    np.fill_diagonal(b, np.inf)
    return a, b


def chain_workflow(volumes=(10 * MB, 20 * MB), comp=5.0):
    wf = Workflow()
    names = [f"s{i}" for i in range(len(volumes) + 1)]
    for n in names:
        wf.add_stage(WorkflowStage(n, computation_seconds=comp))
    for i, v in enumerate(volumes):
        wf.add_edge(names[i], names[i + 1], v)
    return wf, names


class TestWorkflowStructure:
    def test_duplicate_stage_rejected(self):
        wf = Workflow()
        wf.add_stage(WorkflowStage("a", 1.0))
        with pytest.raises(ValidationError):
            wf.add_stage(WorkflowStage("a", 2.0))

    def test_cycle_rejected(self):
        wf, names = chain_workflow()
        with pytest.raises(ValidationError, match="cycle"):
            wf.add_edge(names[-1], names[0], 1.0)

    def test_edge_requires_stages(self):
        wf = Workflow()
        wf.add_stage(WorkflowStage("a", 1.0))
        with pytest.raises(ValidationError):
            wf.add_edge("a", "ghost", 1.0)

    def test_task_graph_conversion(self):
        wf, names = chain_workflow(volumes=(7.0, 9.0))
        g, order = wf.task_graph()
        assert order == sorted(names)  # lexicographic topological order
        i = {n: k for k, n in enumerate(order)}
        assert g.volumes[i["s0"], i["s1"]] == 7.0
        assert g.volumes[i["s1"], i["s2"]] == 9.0

    def test_montage_shape(self):
        wf = montage_like_workflow(width=5, seed=0)
        assert wf.n_stages == 1 + 5 + 4 + 1
        g, order = wf.task_graph()
        assert g.n_edges == 5 + 2 * 4 + 4

    def test_montage_deterministic(self):
        a, _ = montage_like_workflow(width=4, seed=3).task_graph()
        b, _ = montage_like_workflow(width=4, seed=3).task_graph()
        np.testing.assert_array_equal(a.volumes, b.volumes)


class TestMakespan:
    def test_chain_makespan_formula(self):
        wf, names = chain_workflow(volumes=(100 * MB,), comp=2.0)
        alpha, beta = uniform_net(2)
        # s0 on machine 0, s1 on machine 1: 2 + transfer(1s) + 2 = 5.
        ms = workflow_makespan(wf, {"s0": 0, "s1": 1}, alpha, beta)
        assert ms == pytest.approx(5.0)

    def test_colocation_skips_transfer(self):
        wf, names = chain_workflow(volumes=(100 * MB,), comp=2.0)
        alpha, beta = uniform_net(2)
        ms = workflow_makespan(wf, {"s0": 0, "s1": 0}, alpha, beta)
        assert ms == pytest.approx(4.0)

    def test_same_machine_serializes(self):
        # Two independent stages on one machine run back to back.
        wf = Workflow()
        wf.add_stage(WorkflowStage("a", 3.0))
        wf.add_stage(WorkflowStage("b", 4.0))
        alpha, beta = uniform_net(2)
        together = workflow_makespan(wf, {"a": 0, "b": 0}, alpha, beta)
        apart = workflow_makespan(wf, {"a": 0, "b": 1}, alpha, beta)
        assert together == pytest.approx(7.0)
        assert apart == pytest.approx(4.0)

    def test_assignment_validation(self):
        wf, names = chain_workflow()
        alpha, beta = uniform_net(2)
        with pytest.raises(ValidationError, match="missing"):
            workflow_makespan(wf, {"s0": 0}, alpha, beta)
        with pytest.raises(ValidationError, match="outside"):
            workflow_makespan(wf, {n: 9 for n in names}, alpha, beta)

    def test_array_assignment(self):
        wf, names = chain_workflow(volumes=(100 * MB,), comp=1.0)
        alpha, beta = uniform_net(3)
        g, order = wf.task_graph()
        ms = workflow_makespan(wf, np.array([0, 1]), alpha, beta)
        assert ms > 0

    def test_network_aware_assignment_beats_naive(self):
        # A montage workflow on a skewed network: mapping stages with the
        # greedy heuristic on true weights beats a round-robin assignment.
        rng = np.random.default_rng(7)
        n = 12
        wf = montage_like_workflow(width=5, seed=1)
        g, order = wf.task_graph()
        alpha = np.zeros((n, n))
        beta = rng.uniform(20 * MB, 200 * MB, size=(n, n))
        np.fill_diagonal(beta, np.inf)
        w = np.zeros((n, n))
        off = ~np.eye(n, dtype=bool)
        w[off] = 1.0 / beta[off]
        greedy = greedy_mapping(g, bandwidth_from_weights(w))
        naive = np.arange(len(order)) % n
        ms_greedy = workflow_makespan(wf, greedy, alpha, beta)
        ms_naive = workflow_makespan(wf, naive, alpha, beta)
        assert ms_greedy < ms_naive
