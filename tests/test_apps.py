"""Unit tests for the N-body and CG applications and the profile runner."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.apps.breakdown import AppRunner, StepProfile, TimeBreakdown, alltoall_collectives
from repro.apps.cg import (
    CGConfig,
    build_spd_system,
    cg_profile,
    estimate_cg_iterations,
    run_cg_numerics,
)
from repro.apps.nbody import BYTES_PER_BODY, NBodyConfig, NBodySimulation, nbody_profile
from repro.errors import ValidationError
from repro.strategies.baseline import BaselineStrategy
from repro.strategies.rpca import RPCAStrategy

MB = 1024 * 1024


class TestTimeBreakdown:
    def test_total(self):
        bd = TimeBreakdown(computation=1.0, communication=2.0, overhead=0.5)
        assert bd.total == 3.5

    def test_add(self):
        a = TimeBreakdown(1.0, 2.0, 3.0)
        b = TimeBreakdown(0.5, 0.5, 0.5)
        c = a + b
        assert (c.computation, c.communication, c.overhead) == (1.5, 2.5, 3.5)


class TestStepProfile:
    def test_validation(self):
        with pytest.raises(ValidationError):
            StepProfile(collectives=(("alltoall", 1.0),), computation_seconds=0.0)
        with pytest.raises(ValidationError):
            StepProfile(collectives=(), computation_seconds=-1.0)

    def test_alltoall_shape(self):
        coll = alltoall_collectives(80.0, 8)
        assert coll == (("gather", 10.0), ("broadcast", 80.0))


class TestAppRunner:
    def test_baseline_has_no_overhead(self, small_trace):
        steps = [StepProfile(collectives=(("broadcast", 1 * MB),), computation_seconds=0.1)] * 3
        runner = AppRunner(
            trace=small_trace,
            strategy=BaselineStrategy(),
            calibration_overhead=100.0,
            analysis_overhead=10.0,
        )
        bd = runner.run(steps)
        assert bd.overhead == 0.0
        assert bd.computation == pytest.approx(0.3)
        assert bd.communication > 0

    def test_aware_strategy_charged_overhead(self, small_trace):
        s = RPCAStrategy("row_constant", time_step=10)
        s.fit(small_trace.tp_matrix(8 * MB, start=0, count=10))
        steps = [StepProfile(collectives=(("broadcast", 1 * MB),), computation_seconds=0.0)]
        runner = AppRunner(
            trace=small_trace, strategy=s, calibration_overhead=50.0, analysis_overhead=5.0
        )
        bd = runner.run(steps)
        assert bd.overhead == 55.0

    def test_steps_cycle_snapshots(self, small_trace):
        s = BaselineStrategy()
        steps = [StepProfile(collectives=(("broadcast", 1 * MB),), computation_seconds=0.0)] * 50
        bd = AppRunner(trace=small_trace, strategy=s).run(steps)
        assert bd.communication > 0  # just exercising the modulo path

    def test_empty_steps_rejected(self, small_trace):
        with pytest.raises(ValidationError):
            AppRunner(trace=small_trace, strategy=BaselineStrategy()).run([])


class TestNBodyModel:
    def test_config_body_count(self):
        cfg = NBodyConfig(n_steps=10, message_bytes=BYTES_PER_BODY * 100)
        assert cfg.n_bodies == 100

    def test_profile_shape(self):
        cfg = NBodyConfig(n_steps=5, message_bytes=1 * MB)
        steps = nbody_profile(cfg, 8)
        assert len(steps) == 5
        ops = [op for op, _ in steps[0].collectives]
        assert ops == ["gather", "broadcast"]

    def test_computation_scales_inverse_machines(self):
        cfg = NBodyConfig(n_steps=1, message_bytes=1 * MB)
        assert cfg.computation_seconds_per_step(16) == pytest.approx(
            cfg.computation_seconds_per_step(8) / 2
        )

    def test_validation(self):
        with pytest.raises(ValidationError):
            NBodyConfig(n_steps=0, message_bytes=1.0)


class TestNBodyNumerics:
    def test_momentum_conserved(self):
        sim = NBodySimulation(20, seed=0)
        p0 = sim.total_momentum()
        sim.run(50, dt=1e-3)
        p1 = sim.total_momentum()
        np.testing.assert_allclose(p1, p0, atol=1e-9)

    def test_energy_drift_bounded(self):
        sim = NBodySimulation(16, softening=0.2, seed=1)
        e0 = sim.total_energy()
        sim.run(100, dt=1e-4)
        e1 = sim.total_energy()
        assert abs(e1 - e0) / abs(e0) < 0.01

    def test_two_bodies_attract(self):
        sim = NBodySimulation(2, softening=0.01, seed=2)
        sim.pos[:] = [[-0.5, 0, 0], [0.5, 0, 0]]
        sim.vel[:] = 0.0
        d0 = np.linalg.norm(sim.pos[0] - sim.pos[1])
        sim.run(20, dt=1e-2)
        assert np.linalg.norm(sim.pos[0] - sim.pos[1]) < d0

    def test_accelerations_antisymmetric_forces(self):
        sim = NBodySimulation(5, seed=3)
        acc = sim.accelerations()
        total_force = (sim.mass[:, None] * acc).sum(axis=0)
        np.testing.assert_allclose(total_force, 0.0, atol=1e-10)

    def test_validation(self):
        with pytest.raises(ValidationError):
            NBodySimulation(1)


class TestCG:
    def test_spd_system_is_spd(self):
        cfg = CGConfig(vector_size=200)
        a, b = build_spd_system(cfg, seed=0)
        dense = a.toarray()
        np.testing.assert_allclose(dense, dense.T, atol=1e-12)
        eigs = np.linalg.eigvalsh(dense)
        assert eigs.min() > 0

    def test_cg_solves(self):
        cfg = CGConfig(vector_size=300)
        a, b = build_spd_system(cfg, seed=1)
        x, iters = run_cg_numerics(a, b, rtol=1e-8)
        assert iters > 0
        assert np.linalg.norm(a @ x - b) <= 1e-7 * np.linalg.norm(b)

    def test_convergence_criterion_matches_paper(self):
        cfg = CGConfig(vector_size=300)
        a, b = build_spd_system(cfg, seed=2)
        x, _ = run_cg_numerics(a, b, rtol=1e-5)
        assert np.linalg.norm(b - a @ x) <= 1e-5 * np.linalg.norm(b) * (1 + 1e-9)

    def test_iterations_grow_with_size(self):
        # The paper's observation: larger vectors need more iterations.
        iters = []
        for n in (500, 5000, 50000):
            _, it = cg_profile(CGConfig(vector_size=n), 8, seed=3)
            iters.append(it)
        assert iters[0] < iters[1] < iters[2]

    def test_identity_converges_in_one(self):
        a = sp.identity(50, format="csr")
        b = np.ones(50)
        x, iters = run_cg_numerics(a, b)
        assert iters == 1
        np.testing.assert_allclose(x, b)

    def test_profile_override_iterations(self):
        steps, iters = cg_profile(CGConfig(vector_size=1000), 8, iterations=7)
        assert iters == 7 and len(steps) == 7

    def test_estimate_used_above_limit(self):
        cfg = CGConfig(vector_size=1_000_000)
        steps, iters = cg_profile(cfg, 8, numerics_size_limit=1000)
        assert iters == estimate_cg_iterations(cfg)

    def test_estimate_growth_law(self):
        small = estimate_cg_iterations(CGConfig(vector_size=1000))
        large = estimate_cg_iterations(CGConfig(vector_size=1024000))
        # sqrt(kappa) ~ n^(1/4): 1024x size ⇒ ~5.6x iterations.
        assert 3.0 < large / small < 9.0

    def test_vector_bytes(self):
        assert CGConfig(vector_size=1000).vector_bytes == 8000.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            CGConfig(vector_size=2)
