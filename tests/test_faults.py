"""Fault models, schedules and injectors (repro.faults)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration.calibrator import TraceSubstrate
from repro.errors import ValidationError
from repro.faults import (
    FAULT_PROFILES,
    CorruptedReadings,
    FaultSchedule,
    FaultySubstrate,
    ProbeLoss,
    ProbeStraggler,
    RackOutage,
    VMOutage,
    inject_faults,
    materialize_faults,
    parse_fault_spec,
)

pytestmark = pytest.mark.faults

ALL_MODELS = [
    ProbeLoss(0.1),
    ProbeStraggler(0.05, inflation=8.0),
    CorruptedReadings(0.02, scale=30.0),
    VMOutage(machine=2, start=3, duration=2),
    VMOutage(rate=0.02, duration=2),
    RackOutage(start=6, duration=2, group_size=3),
    RackOutage(rate=0.03, group_size=2),
]


class TestSchedules:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_every_model_is_seed_deterministic(self, model):
        a = materialize_faults([model], 12, 6, seed=5)
        b = materialize_faults([model], 12, 6, seed=5)
        assert np.array_equal(a.missing, b.missing)
        assert np.array_equal(a.suspect, b.suspect)
        assert np.array_equal(a.factor, b.factor)
        assert a.events == b.events

    def test_different_seeds_differ(self):
        a = materialize_faults([ProbeLoss(0.2)], 12, 6, seed=1)
        b = materialize_faults([ProbeLoss(0.2)], 12, 6, seed=2)
        assert not np.array_equal(a.missing, b.missing)

    def test_sibling_models_draw_independent_streams(self):
        # Inserting a model must not perturb another model's draws.
        alone = materialize_faults([ProbeLoss(0.2)], 12, 6, seed=9)
        paired = materialize_faults(
            [ProbeLoss(0.2), ProbeStraggler(0.3)], 12, 6, seed=9
        )
        loss_only = paired.missing  # straggler adds no missing entries
        assert np.array_equal(alone.missing, loss_only)

    def test_diagonal_never_faulted(self):
        sched = materialize_faults(ALL_MODELS, 10, 5, seed=3)
        for k in range(10):
            assert not np.diag(sched.missing[k]).any()
            assert not np.diag(sched.suspect[k]).any()
            assert np.all(np.diag(sched.factor[k]) == 1.0)

    def test_merge_validates_shape(self):
        a = FaultSchedule.clean(4, 3)
        b = FaultSchedule.clean(4, 4)
        with pytest.raises(ValidationError):
            a.merge(b)

    def test_factors_must_be_positive_finite(self):
        bad = np.ones((2, 3, 3))
        bad[0, 0, 1] = -1.0
        with pytest.raises(ValidationError):
            FaultSchedule(
                missing=np.zeros((2, 3, 3), bool),
                suspect=np.zeros((2, 3, 3), bool),
                factor=bad,
            )

    def test_non_model_rejected(self):
        with pytest.raises(ValidationError):
            materialize_faults(["probe_loss"], 4, 4, seed=0)

    def test_vm_outage_darkens_row_and_column(self):
        sched = materialize_faults(
            [VMOutage(machine=1, start=2, duration=3)], 8, 4, seed=0
        )
        for k in (2, 3, 4):
            assert sched.missing[k, 1, [0, 2, 3]].all()
            assert sched.missing[k, [0, 2, 3], 1].all()
        assert not sched.missing[1].any()
        assert not sched.missing[5].any()
        assert sched.count("vm_outage") == 1

    def test_vm_outage_clipped_at_trace_end(self):
        sched = materialize_faults(
            [VMOutage(machine=0, start=6, duration=10)], 8, 4, seed=0
        )
        assert sched.missing[7, 0, 1]

    def test_rack_outage_is_correlated(self):
        sched = materialize_faults(
            [RackOutage(start=1, duration=1, group_size=3)], 4, 8, seed=2
        )
        (event,) = sched.events
        assert len(event.machines) == 3
        for m in event.machines:
            assert sched.missing[1, m, :].sum() == 7  # all off-diag partners

    def test_model_parameter_validation(self):
        with pytest.raises(ValidationError):
            ProbeLoss(1.5)
        with pytest.raises(ValidationError):
            ProbeStraggler(0.1, inflation=0.5)
        with pytest.raises(ValidationError):
            CorruptedReadings(0.1, scale=1.0)
        with pytest.raises(ValidationError):
            VMOutage()  # neither rate nor machine+start
        with pytest.raises(ValidationError):
            VMOutage(machine=3)  # machine without start
        with pytest.raises(ValidationError):
            RackOutage()


class TestInjectTrace:
    def test_holes_keep_ground_truth_values(self, small_trace):
        inj = inject_faults(small_trace, [ProbeLoss(0.15)], seed=4)
        assert inj.trace.mask is not None
        holes = ~inj.trace.mask
        assert holes.any()
        assert np.array_equal(inj.trace.alpha, small_trace.alpha)
        assert np.array_equal(inj.trace.beta, small_trace.beta)

    def test_suspect_entries_are_perturbed_not_masked(self, small_trace):
        inj = inject_faults(small_trace, [ProbeStraggler(0.2, inflation=5.0)], seed=4)
        sus = inj.schedule.suspect
        assert sus.any()
        assert inj.trace.mask is None  # stragglers answer, nothing missing
        np.testing.assert_allclose(
            inj.trace.alpha[sus], small_trace.alpha[sus] * 5.0
        )
        np.testing.assert_allclose(
            inj.trace.beta[sus], small_trace.beta[sus] / 5.0
        )

    def test_existing_mask_is_intersected(self, small_trace):
        first = inject_faults(small_trace, [ProbeLoss(0.1)], seed=1).trace
        second = inject_faults(first, [ProbeLoss(0.1)], seed=2).trace
        assert second.observed_fraction <= first.observed_fraction

    def test_injection_is_deterministic(self, small_trace):
        a = inject_faults(small_trace, [ProbeLoss(0.1), VMOutage(rate=0.02)], seed=6)
        b = inject_faults(small_trace, [ProbeLoss(0.1), VMOutage(rate=0.02)], seed=6)
        assert np.array_equal(a.trace.mask, b.trace.mask)
        assert a.events == b.events


class TestFaultySubstrate:
    def test_outage_fails_every_attempt(self, small_trace):
        sub = FaultySubstrate(
            TraceSubstrate(small_trace),
            [VMOutage(machine=1, start=0, duration=small_trace.n_snapshots)],
            seed=3,
        )
        for _ in range(5):  # retries cannot help a persistent outage
            (res,) = sub.measure_round(((1, 2),), 0)
            assert np.isnan(res[0]) and np.isnan(res[1])

    def test_transient_loss_can_recover_on_retry(self, small_trace):
        sub = FaultySubstrate(TraceSubstrate(small_trace), [ProbeLoss(0.5)], seed=3)
        results = [sub.measure_round(((0, 1),), 0)[0] for _ in range(40)]
        lost = [r for r in results if np.isnan(r[0])]
        ok = [r for r in results if not np.isnan(r[0])]
        assert lost and ok  # both outcomes occur across attempts

    def test_clean_pairs_pass_through_exactly(self, small_trace):
        sub = FaultySubstrate(TraceSubstrate(small_trace), [ProbeLoss(0.0)], seed=3)
        (res,) = sub.measure_round(((2, 5),), 4)
        assert res == (
            float(small_trace.alpha[4, 2, 5]),
            float(small_trace.beta[4, 2, 5]),
        )

    def test_straggler_inflates_weight_both_ways(self, small_trace):
        sub = FaultySubstrate(
            TraceSubstrate(small_trace), [ProbeStraggler(1.0, inflation=4.0)], seed=3
        )
        (res,) = sub.measure_round(((0, 1),), 0)
        assert res[0] == pytest.approx(small_trace.alpha[0, 0, 1] * 4.0)
        assert res[1] == pytest.approx(small_trace.beta[0, 0, 1] / 4.0)

    def test_persistent_models_need_horizon(self, small_trace):
        class Headless:
            n_machines = small_trace.n_machines

            def measure_round(self, pairs, snapshot):
                return [(0.0, 1.0)] * len(pairs)

        with pytest.raises(ValidationError):
            FaultySubstrate(Headless(), [VMOutage(rate=0.1)], seed=0)


class TestParseFaultSpec:
    def test_profiles_expand(self):
        for profile in FAULT_PROFILES:
            models = parse_fault_spec(profile)
            assert models

    def test_token_grammar(self):
        models = parse_fault_spec(
            "probe_loss=0.1,straggler=0.05,corrupt=0.01,"
            "vm_outage=3:5:2,rack_outage=0.02"
        )
        kinds = [m.kind for m in models]
        assert kinds == [
            "probe_loss", "straggler", "corruption", "vm_outage", "rack_outage",
        ]
        vm = models[3]
        assert (vm.machine, vm.start, vm.duration) == (3, 5, 2)

    def test_rack_deterministic_form(self):
        (rack,) = parse_fault_spec("rack_outage=4:3")
        assert (rack.start, rack.duration) == (4, 3)

    @pytest.mark.parametrize(
        "spec",
        ["", "bogus=1", "probe_loss", "probe_loss=x", "vm_outage=1:2:3:4", ","],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValidationError):
            parse_fault_spec(spec)
