"""Execute the doctest examples embedded in docstrings.

Keeps the README-style snippets in module docstrings honest: if the public
API drifts, these fail.
"""

import doctest

import pytest

import repro
import repro.core.maintenance
import repro.mpisim.comm
import repro.utils.timing

MODULES = [
    repro,
    repro.core.maintenance,
    repro.mpisim.comm,
    repro.utils.timing,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
