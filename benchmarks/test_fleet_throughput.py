"""Fleet throughput: 8 synthetic clusters, parallel vs serial.

The tentpole claim for the fleet scheduler: on a multi-core box, running
8 clusters' Algorithm-1 sessions across 4 workers completes the identical
operation plan at >= 3x the serial throughput — while every cluster's
``P_D`` stays **bit-identical** to the serial engine (parity is asserted
unconditionally; only the speedup needs cores, so it is skipped on
machines with fewer than 4).

Per-cluster work is deliberately heavy relative to the per-batch IPC
(32-machine clusters, a dynamic trace forcing frequent warm re-solves):
the benchmark measures scheduling, shared-memory transport and capsule
round-trips under realistic solver load, not queue ping-pong.
"""

import os
import time

import numpy as np
import pytest

from repro.cloudsim.dynamics import DynamicsConfig
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.fleet import ClusterSpec, FleetConfig, FleetScheduler

N_CLUSTERS = 8
# The CI fleet job sweeps this via its worker matrix; 4 is the headline run.
N_WORKERS = int(os.environ.get("REPRO_FLEET_WORKERS", "4"))


@pytest.fixture(scope="module")
def fleet_clusters():
    cfg = TraceConfig(
        n_machines=32,
        n_snapshots=24,
        dynamics=DynamicsConfig(
            volatility_sigma=0.06, spike_probability=0.03, migration_rate=0.03
        ),
    )
    return [
        ClusterSpec(name=f"cluster-{i:02d}", trace=generate_trace(cfg, seed=800 + i))
        for i in range(N_CLUSTERS)
    ]


def _config(n_workers: int) -> FleetConfig:
    return FleetConfig(
        n_workers=n_workers, window=10, threshold=1.0, operations=48, batch_size=8
    )


def test_fleet_throughput_and_parity(fleet_clusters, emit):
    cfg = _config(N_WORKERS)
    scheduler = FleetScheduler(fleet_clusters, cfg)

    t0 = time.perf_counter()
    serial = scheduler.run_serial()
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = FleetScheduler(fleet_clusters, cfg).run()
    parallel_s = time.perf_counter() - t0

    # Parity first — it must hold on any machine, any worker count.
    for name in sorted(parallel.clusters):
        p, s = parallel.clusters[name], serial.clusters[name]
        assert np.array_equal(p.constant_row, s.constant_row), (
            f"{name}: parallel P_D diverged from serial"
        )
        assert p.norm_ne == s.norm_ne
        assert p.recalibrations == s.recalibrations

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    emit(
        f"fleet throughput: {N_CLUSTERS} clusters x {cfg.operations} ops, "
        f"{N_WORKERS} workers\n"
        f"  serial:   {serial_s:.2f} s ({serial.total_operations / serial_s:.1f} ops/s)\n"
        f"  parallel: {parallel_s:.2f} s "
        f"({parallel.total_operations / parallel_s:.1f} ops/s)\n"
        f"  speedup:  {speedup:.2f}x (P_D bit-identical on all clusters)"
    )

    cores = os.cpu_count() or 1
    if cores < N_WORKERS:
        pytest.skip(
            f"speedup assertion needs >= {N_WORKERS} cores (have {cores}); "
            "parity verified above"
        )
    # The headline 3x target is for the 4-worker run; with 2 workers the
    # ceiling is 2x, so demand a proportionate 1.5x there.
    target = 3.0 if N_WORKERS >= 4 else 1.5
    assert speedup >= target, (
        f"expected >= {target}x fleet speedup with {N_WORKERS} workers on "
        f"{cores} cores, measured {speedup:.2f}x"
    )


def test_fleet_scales_with_workers(fleet_clusters, emit):
    """Doubling workers must not slow the fleet down (monotone throughput)."""
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"scaling curve needs >= 4 cores (have {cores})")
    rows = []
    for n_workers in (1, 2, 4):
        t0 = time.perf_counter()
        report = FleetScheduler(fleet_clusters, _config(n_workers)).run()
        elapsed = time.perf_counter() - t0
        rows.append((n_workers, elapsed, report.total_operations / elapsed))
    emit(
        "fleet scaling:\n"
        + "\n".join(
            f"  {w} worker(s): {s:.2f} s ({t:.1f} ops/s)" for w, s, t in rows
        )
    )
    # 20% slack absorbs scheduling jitter on busy CI runners.
    assert rows[1][2] >= rows[0][2] * 0.8
    assert rows[2][2] >= rows[1][2] * 0.8
