"""Proximal operators and SVD helpers shared by the RPCA solvers.

Two proximal maps do all the work in RPCA:

* :func:`soft_threshold` — the prox of the (elementwise) L1 norm; shrinks
  every entry toward zero by ``tau`` and produces the sparse component.
* :func:`singular_value_threshold` — the prox of the nuclear norm; soft-
  thresholds the singular values and produces the low-rank component.

``truncated_svd`` wraps the thin-SVD call (``full_matrices=False``) that the
scientific-Python optimization guide singles out: for the tall-skinny or
short-fat matrices RPCA sees (``n_snapshots × N²`` with n_snapshots ≈ 10),
the thin SVD is orders of magnitude cheaper than the full decomposition.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from .._validation import as_float_matrix, check_nonnegative

__all__ = ["soft_threshold", "singular_value_threshold", "truncated_svd"]


def soft_threshold(x: np.ndarray, tau: float) -> np.ndarray:
    """Elementwise soft-thresholding (shrinkage) operator.

    ``S_tau(x) = sign(x) * max(|x| - tau, 0)`` — the proximal operator of
    ``tau * ||·||_1``.
    """
    check_nonnegative(tau, "tau")
    return np.sign(x) * np.maximum(np.abs(x) - tau, 0.0)


def truncated_svd(a: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Thin SVD ``a = U @ diag(s) @ Vt`` with LAPACK gesdd, gesvd fallback.

    ``gesdd`` (divide and conquer) is the fast default but can fail to
    converge on ill-conditioned inputs; the classical ``gesvd`` is slower
    but robust, so it serves as the fallback.
    """
    m = as_float_matrix(a, "a")
    try:
        u, s, vt = scipy.linalg.svd(m, full_matrices=False, lapack_driver="gesdd")
    except np.linalg.LinAlgError:  # pragma: no cover - rare LAPACK failure
        u, s, vt = scipy.linalg.svd(m, full_matrices=False, lapack_driver="gesvd")
    return u, s, vt


def singular_value_threshold(
    a: np.ndarray, tau: float
) -> tuple[np.ndarray, int, float]:
    """Singular value thresholding ``D_tau(a)`` (Cai, Candès & Shen).

    Returns ``(D, rank, top_sv)`` where ``D = U @ diag(max(s - tau, 0)) @ Vt``,
    ``rank`` is the number of singular values exceeding ``tau``, and
    ``top_sv`` is the largest singular value of *a* (used by APG stopping
    criteria and continuation schedules).
    """
    check_nonnegative(tau, "tau")
    u, s, vt = truncated_svd(a)
    shrunk = s - tau
    rank = int(np.count_nonzero(shrunk > 0.0))
    if rank == 0:
        return np.zeros_like(np.asarray(a, dtype=np.float64)), 0, float(s[0]) if s.size else 0.0
    d = (u[:, :rank] * shrunk[:rank]) @ vt[:rank]
    return d, rank, float(s[0])
