"""Trace analytics: the offline studies behind the paper's Appendix A.

Tools to characterize a calibration trace before deciding how to optimize:
per-link band statistics, cluster-wide stability summaries, and an offline
regime-change detector that locates the significant changes the online
maintenance loop (Algorithm 1) would have reacted to.
"""

from .tracestats import (
    TraceStabilityReport,
    link_band_table,
    trace_stability_report,
)
from .changepoints import detect_regime_changes, RegimeChange
from .significance import ImprovementCI, bootstrap_improvement

__all__ = [
    "ImprovementCI",
    "bootstrap_improvement",
    "TraceStabilityReport",
    "link_band_table",
    "trace_stability_report",
    "detect_regime_changes",
    "RegimeChange",
]
