"""The elementwise kernel layer: parity contracts, routing, observability.

Mirrors the guarantees pinned for the SVD kernel layer in
``test_core_kernels.py``, one tier stricter where the design allows it:

* **Bit identity of fused** — ``elementwise_backend="fused"`` preserves the
  reference chain's per-element operation order (it only blocks the ufunc
  sweeps), so fused solves are bit-identical to reference solves on every
  solver × masked/unmasked × dtype × stacked combination. That is asserted
  with ``np.array_equal``, not a tolerance.
* **Certified jit** — the numba kernels follow the same parity contract as
  batch float32 mode: certified against reference within ``1e-6 × scale``.
  Without numba the kernel bodies still run as plain Python (the ``@_njit``
  decorator degrades to identity), so the certification is exercised here
  by routing a kernel to the jit bodies directly.
* **Routing and gating** — ``"jit"`` raises cleanly when numba is missing,
  configs stay constructible on machines without it (name-only
  validation), ``elementwise_backend != "reference"`` conflicts with the
  bit-pinned ``svd_backend="exact"`` loop, and non-contiguous buffers fall
  back to the reference ops with a counter instead of silently copying.
"""

import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.apg import rpca_apg
from repro.core.batch import solve_rpca_batch
from repro.core.decompose import decompose
from repro.core.elementwise import (
    EW_BACKENDS,
    DEFAULT_EW_CHUNK,
    ElementwiseKernel,
    check_ew_svd_compatible,
    ensure_ew_backend_available,
    jit_available,
    validate_ew_backend,
)
from repro.core.engine import DecompositionEngine
from repro.core.ialm import rpca_ialm
from repro.core.matrices import TPMatrix
from repro.core.streaming import StreamingDecomposer
from repro.errors import ValidationError
from repro.observability import Instrumentation, instrumented

SOLVERS = {"apg": rpca_apg, "ialm": rpca_ialm}


class _FakeSource:
    """Minimal WindowSource over a synthetic near-constant network."""

    n_machines = 12
    n_snapshots = 30

    def __init__(self):
        rng = np.random.default_rng(21)
        base = rng.uniform(0.5, 2.0, size=(self.n_machines, self.n_machines))
        self._rows = [
            (base + 0.02 * rng.standard_normal(base.shape)).reshape(-1)
            for _ in range(self.n_snapshots)
        ]

    def snapshot_row(self, k, nbytes):
        return self._rows[k]

    def timestamp(self, k):
        return float(k)


def _rpca_problem(m=8, n=120, rank=1, sparsity=0.05, seed=0, dtype=np.float64):
    """A wide low-rank + sparse matrix shaped like the paper's TP-matrices."""
    rng = np.random.default_rng(seed)
    low = np.zeros((m, n))
    for _ in range(rank):
        low += np.outer(rng.standard_normal(m), rng.standard_normal(n))
    sparse = (rng.random((m, n)) < sparsity) * rng.standard_normal((m, n)) * 3.0
    return (low + sparse).astype(dtype)


def _mask(shape, missing=0.15, seed=3):
    rng = np.random.default_rng(seed)
    mask = rng.random(shape) > missing
    mask[0] = True  # keep every column observed at least once
    return mask


class TestValidation:
    def test_backends_tuple(self):
        assert EW_BACKENDS == ("reference", "fused", "jit")

    @pytest.mark.parametrize("backend", EW_BACKENDS)
    def test_known_names_validate(self, backend):
        assert validate_ew_backend(backend) == backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError, match="unknown elementwise backend"):
            validate_ew_backend("simd")

    def test_exact_conflict_rejected(self):
        with pytest.raises(ValidationError, match="non-exact SVD backend"):
            check_ew_svd_compatible("exact", "fused")

    @pytest.mark.parametrize("svd", ["auto", "gram", "randomized"])
    def test_non_exact_svd_compatible(self, svd):
        check_ew_svd_compatible(svd, "fused")  # does not raise

    def test_reference_always_compatible(self):
        check_ew_svd_compatible("exact", "reference")  # does not raise

    def test_jit_gated_on_numba(self):
        if jit_available():
            assert ensure_ew_backend_available("jit") == "jit"
        else:
            with pytest.raises(ValidationError, match="requires numba"):
                ensure_ew_backend_available("jit")

    def test_name_validation_never_needs_numba(self):
        # Configs must stay constructible on machines without numba; only
        # building a kernel (or an engine) checks availability.
        assert validate_ew_backend("jit") == "jit"

    def test_solver_rejects_exact_conflict(self):
        a = _rpca_problem()
        for solver in SOLVERS.values():
            with pytest.raises(ValidationError, match="non-exact SVD backend"):
                solver(a, elementwise_backend="fused")

    def test_engine_rejects_non_svt_solver(self):
        with pytest.raises(ValidationError, match="elementwise backend"):
            DecompositionEngine(
                _FakeSource(), nbytes=8.0, solver="row_constant",
                elementwise_backend="fused",
            )

    def test_engine_rejects_exact_conflict(self):
        with pytest.raises(ValidationError, match="non-exact SVD backend"):
            DecompositionEngine(
                _FakeSource(), nbytes=8.0, elementwise_backend="fused"
            )

    def test_engine_calibrations_bit_identical(self):
        ref = DecompositionEngine(
            _FakeSource(), nbytes=8.0, time_step=10, svd_backend="auto"
        )
        fus = DecompositionEngine(
            _FakeSource(), nbytes=8.0, time_step=10, svd_backend="auto",
            elementwise_backend="fused",
        )
        for end in (10, 12):
            a = ref.calibrate(end)
            b = fus.calibrate(end)
            assert np.array_equal(a.constant.row, b.constant.row)


class TestImportGuard:
    def test_package_imports_with_numba_blocked(self):
        """The layer (and the package) must import when numba cannot."""
        code = (
            "import sys\n"
            "class _Block:\n"
            "    def find_module(self, name, path=None):\n"
            "        if name == 'numba' or name.startswith('numba.'):\n"
            "            return self\n"
            "    def load_module(self, name):\n"
            "        raise ImportError('numba blocked for test')\n"
            "sys.meta_path.insert(0, _Block())\n"
            "sys.modules.pop('numba', None)\n"
            "import repro\n"
            "from repro.core.elementwise import jit_available, ElementwiseKernel\n"
            "from repro.errors import ValidationError\n"
            "assert not jit_available()\n"
            "try:\n"
            "    ElementwiseKernel('jit')\n"
            "except ValidationError as e:\n"
            "    assert 'requires numba' in str(e)\n"
            "else:\n"
            "    raise SystemExit('jit kernel built without numba')\n"
            "ElementwiseKernel('fused')\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr or proc.stdout


def _solve_pair(solver, a, mask, ew, **kw):
    ref = SOLVERS[solver](a, mask=mask, svd_backend="auto", **kw)
    alt = SOLVERS[solver](
        a, mask=mask, svd_backend="auto", elementwise_backend=ew, **kw
    )
    return ref, alt


class TestFusedBitIdentity:
    @pytest.mark.parametrize("masked", [False, True])
    @pytest.mark.parametrize("solver", ["apg", "ialm"])
    def test_single_solve(self, solver, masked):
        a = _rpca_problem(seed=11)
        mask = _mask(a.shape) if masked else None
        ref, fus = _solve_pair(solver, a, mask, "fused")
        assert ref.iterations == fus.iterations
        assert np.array_equal(ref.low_rank, fus.low_rank)
        assert np.array_equal(ref.sparse, fus.sparse)

    @settings(max_examples=12, deadline=None)
    @given(
        solver=st.sampled_from(["apg", "ialm"]),
        seed=st.integers(min_value=0, max_value=2**16),
        m=st.integers(min_value=4, max_value=10),
        n=st.integers(min_value=20, max_value=90),
        masked=st.booleans(),
    )
    def test_property_single_solve(self, solver, seed, m, n, masked):
        a = _rpca_problem(m=m, n=n, seed=seed)
        mask = _mask(a.shape, seed=seed + 1) if masked else None
        ref, fus = _solve_pair(solver, a, mask, "fused", max_iter=40)
        assert ref.iterations == fus.iterations
        assert np.array_equal(ref.low_rank, fus.low_rank)
        assert np.array_equal(ref.sparse, fus.sparse)

    def test_chunking_is_invisible(self, monkeypatch):
        # A chunk smaller than a row exercises the block seams; results
        # must not depend on the chunk size at all.
        a = _rpca_problem(seed=5)
        ref = rpca_apg(a, svd_backend="auto")
        big = rpca_apg(a, svd_backend="auto", elementwise_backend="fused")
        real_init = ElementwiseKernel.__init__

        def tiny_chunks(self, backend="reference", *, chunk=DEFAULT_EW_CHUNK):
            real_init(self, backend, chunk=17)

        monkeypatch.setattr(ElementwiseKernel, "__init__", tiny_chunks)
        small = rpca_apg(a, svd_backend="auto", elementwise_backend="fused")
        assert np.array_equal(ref.low_rank, big.low_rank)
        assert np.array_equal(big.low_rank, small.low_rank)
        assert np.array_equal(big.sparse, small.sparse)

    @settings(max_examples=8, deadline=None)
    @given(
        solver=st.sampled_from(["apg", "ialm"]),
        dtype=st.sampled_from(["float64", "float32"]),
        seed=st.integers(min_value=0, max_value=2**16),
        b=st.integers(min_value=1, max_value=3),
        masked=st.booleans(),
    )
    def test_property_batch_stacks(self, solver, dtype, seed, b, masked):
        mats = [_rpca_problem(m=6, n=40, seed=seed + i) for i in range(b)]
        masks = (
            [_mask(m.shape, seed=seed + 10 + i) for i, m in enumerate(mats)]
            if masked
            else None
        )
        ref = solve_rpca_batch(mats, masks, solver=solver, dtype=dtype)
        fus = solve_rpca_batch(
            mats, masks, solver=solver, dtype=dtype, elementwise_backend="fused"
        )
        for r, f in zip(ref, fus):
            assert r.iterations == f.iterations
            assert np.array_equal(r.low_rank, f.low_rank)
            assert np.array_equal(r.sparse, f.sparse)


def _jit_bodied_kernel():
    """A kernel routed to the jit bodies regardless of numba's presence.

    Without numba the ``@_njit`` decorator is the identity, so the kernel
    bodies execute as plain Python — same arithmetic, certified the same.
    """
    kernel = ElementwiseKernel("fused")
    kernel.backend = "jit"
    return kernel


class TestJitCertification:
    @pytest.mark.parametrize("masked", [False, True])
    @pytest.mark.parametrize("solver", ["apg", "ialm"])
    def test_jit_bodies_within_tolerance(self, solver, masked, monkeypatch):
        a = _rpca_problem(seed=23)
        mask = _mask(a.shape) if masked else None
        ref = SOLVERS[solver](a, mask=mask, svd_backend="auto")

        real_init = ElementwiseKernel.__init__

        def jit_init(self, backend="reference", **kw):
            real_init(self, "fused", **kw)
            self.backend = "jit"

        monkeypatch.setattr(ElementwiseKernel, "__init__", jit_init)
        jit = SOLVERS[solver](
            a, mask=mask, svd_backend="auto", elementwise_backend="fused"
        )
        scale = max(float(np.abs(ref.low_rank).max()), 1.0)
        assert np.abs(jit.low_rank - ref.low_rank).max() <= 1e-6 * scale
        assert np.abs(jit.sparse - ref.sparse).max() <= 1e-6 * scale

    def test_shrink_jit_body_matches_reference(self):
        rng = np.random.default_rng(7)
        x = rng.standard_normal(64)
        ref = ElementwiseKernel("reference").shrink(x, 0.3)
        jit = _jit_bodied_kernel().shrink(x, 0.3)
        assert np.abs(np.asarray(jit) - ref).max() <= 1e-12


class TestRoutingAndObservability:
    def test_step_counters_and_timers(self):
        a = _rpca_problem(seed=31)
        sink = Instrumentation("ew")
        with instrumented(sink):
            rpca_apg(a, svd_backend="auto", elementwise_backend="fused")
        assert sink.counters.get("kernel.ew.fused", 0) > 0
        assert sink.timers.get("kernel.ew_seconds", 0.0) > 0.0
        assert sink.timers.get("kernel.ew.fused_seconds", 0.0) > 0.0

    def test_reference_backend_also_times(self):
        # ew_share must be reportable for the reference chain too.
        a = _rpca_problem(seed=31)
        sink = Instrumentation("ew")
        with instrumented(sink):
            rpca_apg(a, svd_backend="auto")
        assert sink.counters.get("kernel.ew.reference", 0) > 0
        assert sink.timers.get("kernel.ew_seconds", 0.0) > 0.0

    def test_non_contiguous_falls_back(self):
        kernel = ElementwiseKernel("fused")
        x = np.asfortranarray(np.random.default_rng(0).standard_normal((8, 60)))
        assert not x.flags.c_contiguous
        sink = Instrumentation("ew")
        with instrumented(sink):
            out = kernel.shrink(x, 0.2)
        assert sink.counters.get("kernel.ew.fallback", 0) > 0
        ref = ElementwiseKernel("reference").shrink(x, 0.2)
        assert np.array_equal(np.asarray(out), ref)

    def test_decompose_threads_backend(self):
        tp = TPMatrix(data=_rpca_problem(n=16), n_machines=4)
        ref = decompose(tp, solver="apg", svd_backend="auto")
        fus = decompose(
            tp, solver="apg", svd_backend="auto", elementwise_backend="fused"
        )
        assert np.array_equal(ref.constant.row, fus.constant.row)

    def test_decompose_rejects_non_svt_solver(self):
        tp = TPMatrix(data=_rpca_problem(n=16), n_machines=4)
        with pytest.raises(ValidationError, match="elementwise backend"):
            decompose(tp, solver="row_constant", elementwise_backend="fused")


class TestStreamingShrink:
    def _seeded(self, rows, backend):
        window = rows[:10]
        res = rpca_apg(window, svd_backend="auto")
        dec = StreamingDecomposer(window.shape, elementwise_backend=backend)
        dec.seed(end=10, data=window, low_rank=res.low_rank, sparse=res.sparse)
        return dec

    def test_streaming_folds_bit_identical(self):
        rows = _rpca_problem(m=30, n=50, seed=41)
        ref = self._seeded(rows, "reference")
        fus = self._seeded(rows, "fused")
        for key in range(10, 30):
            a = ref.fold(key, rows[key])
            b = fus.fold(key, rows[key])
            assert a == b  # same fallback decision (usually None)
            if a is not None:
                break
            sa, sb = ref.export_state(), fus.export_state()
            assert np.array_equal(sa.sparse, sb.sparse)
            assert np.array_equal(sa.coeffs, sb.coeffs)
            assert np.array_equal(sa.basis, sb.basis)

    def test_scratch_rows_do_not_alias_state(self):
        # The fused shrink hands back kernel-owned scratch; the fold must
        # copy it into the slid window before the next call reuses it.
        rows = _rpca_problem(m=16, n=30, seed=43)
        fus = self._seeded(rows, "fused")
        fus.fold(10, rows[10])
        first = fus.export_state().sparse[-1].copy()
        fus.fold(11, rows[11])
        assert np.array_equal(fus.export_state().sparse[-2], first)


class TestBenchFingerprint:
    def test_machine_block_records_both_cpu_counts(self):
        from repro.observability.benchrecord import (
            BENCH_SCHEMA_VERSION,
            bench_machine,
        )

        assert BENCH_SCHEMA_VERSION == 2
        machine = bench_machine()
        assert machine["cpu_count_host"] == os.cpu_count()
        if hasattr(os, "sched_getaffinity"):
            affinity = len(os.sched_getaffinity(0))
            assert machine["cpu_affinity"] == affinity
            # The governing count is the schedulable one, never the
            # (potentially over-reported) host count.
            assert machine["cpu_count"] == affinity
        else:
            assert machine["cpu_affinity"] is None
            assert machine["cpu_count"] == os.cpu_count()
