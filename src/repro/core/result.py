"""The concrete solver-result contract shared by every RPCA backend.

Historically each solver returned its own result dataclass (``APGResult``,
``IALMResult``, ...) and downstream code duck-typed across them. That made
the contract invisible: a solver could omit a field and nothing failed until
an attribute lookup deep inside an experiment. :class:`SolverResult` is the
one frozen dataclass every registered solver returns; the old names survive
as aliases so existing imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SolverResult"]


@dataclass(frozen=True, slots=True)
class SolverResult:
    """Outcome of one RPCA solve: ``a ≈ low_rank + sparse`` plus diagnostics.

    Attributes
    ----------
    low_rank:
        The recovered low-rank matrix ``D``.
    sparse:
        The recovered sparse matrix ``E``.
    rank:
        Numerical rank of ``D`` at the final iterate.
    iterations:
        Number of iterations performed (1 for direct solvers).
    converged:
        Whether the stopping criterion was met within the budget.
    residual:
        Final relative residual (stationarity gap for APG, feasibility gap
        for IALM, reconstruction residual for PCA, 0 for exact solvers).
    constant_row:
        For solvers whose ``low_rank`` is exactly row-constant
        (``row_constant``, ``pca``): the representative row. ``None`` for
        generic RPCA solvers, whose near-rank-one ``D`` still needs a
        :func:`~repro.core.decompose.constant_row` extraction.
    warm_started:
        Whether this solve was initialized from a previous solution.
    """

    low_rank: np.ndarray
    sparse: np.ndarray
    rank: int
    iterations: int
    converged: bool
    residual: float
    constant_row: np.ndarray | None = None
    warm_started: bool = False

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the decomposed matrix."""
        return self.low_rank.shape  # type: ignore[return-value]
