"""CUSUM regime detection: detector unit behavior + session-level wiring.

The session-level tests are the issue's acceptance scenario: a *permanent*
bandwidth-band change must be classified as a regime SHIFT and force a cold
re-calibration, while an *equal-magnitude transient* spike must be absorbed
(SPIKE verdict, ``P_D`` kept in service, no re-calibration).
"""

import numpy as np
import pytest

from repro.cloudsim.dynamics import DynamicsConfig
from repro.cloudsim.trace import CalibrationTrace
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.core.maintenance import (
    CusumRegimeDetector,
    RegimeConfig,
    RegimeVerdict,
)
from repro.runtime.session import TraceSession


class TestDetectorUnit:
    def test_warmup_is_always_stable(self):
        det = CusumRegimeDetector(RegimeConfig(warmup=5))
        for _ in range(5):
            assert det.observe(1000.0) is RegimeVerdict.STABLE
        assert det.warmed_up

    def test_stable_signal_stays_stable(self):
        det = CusumRegimeDetector(RegimeConfig(warmup=4))
        rng = np.random.default_rng(3)
        verdicts = {det.observe(0.1 + 0.01 * rng.standard_normal())
                    for _ in range(50)}
        assert verdicts == {RegimeVerdict.STABLE}

    def test_single_spike_is_spike_not_shift(self):
        det = CusumRegimeDetector(RegimeConfig(warmup=4))
        for v in (0.10, 0.11, 0.09, 0.10):
            det.observe(v)
        assert det.observe(5.0) is RegimeVerdict.SPIKE  # violent outlier
        assert det.observe(0.10) is RegimeVerdict.STABLE  # back to baseline
        assert det.shifts == 0 and det.spikes == 1

    def test_sustained_elevation_is_shift(self):
        det = CusumRegimeDetector(RegimeConfig(warmup=4))
        for v in (0.10, 0.11, 0.09, 0.10):
            det.observe(v)
        verdicts = [det.observe(5.0) for _ in range(6)]
        assert RegimeVerdict.SHIFT in verdicts
        assert det.shifts == 1

    def test_shift_resets_baseline(self):
        det = CusumRegimeDetector(RegimeConfig(warmup=4))
        for v in (0.10, 0.11, 0.09, 0.10):
            det.observe(v)
        while det.observe(5.0) is not RegimeVerdict.SHIFT:
            pass
        assert not det.warmed_up and det.cusum == 0.0
        # the new level becomes the new baseline
        for _ in range(4):
            det.observe(5.0)
        assert det.observe(5.0) is RegimeVerdict.STABLE

    def test_winsorization_caps_single_contribution(self):
        cfg = RegimeConfig(warmup=4, spike_z=4.0, drift=0.5, decision=8.0)
        det = CusumRegimeDetector(cfg)
        for v in (0.10, 0.11, 0.09, 0.10):
            det.observe(v)
        det.observe(1e6)  # absurd outlier
        assert det.cusum <= cfg.spike_z - cfg.drift + 1e-9

    def test_non_finite_observation_rejected(self):
        det = CusumRegimeDetector()
        with pytest.raises(ValueError, match="finite"):
            det.observe(float("nan"))

    def test_state_round_trip(self):
        det = CusumRegimeDetector(RegimeConfig(warmup=3))
        for v in (0.1, 0.2, 0.15, 0.4, 0.12):
            det.observe(v)
        clone = CusumRegimeDetector(det.config)
        clone.restore_state(det.state_dict())
        assert clone.state_dict() == det.state_dict()
        assert clone.observe(0.3) == det.observe(0.3)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="warmup"):
            RegimeConfig(warmup=1)
        with pytest.raises(ValueError, match="decision must exceed"):
            RegimeConfig(decision=1.0, spike_z=4.0, drift=0.5)


@pytest.fixture(scope="module")
def regime_base_trace():
    """Near-calm ground truth to build shift/spike variants from."""
    cfg = TraceConfig(
        n_machines=6,
        n_snapshots=40,
        dynamics=DynamicsConfig(
            volatility_sigma=0.02,
            spike_probability=0.0,
            hotspot_probability=0.0,
            migration_rate=0.0,
        ),
    )
    return generate_trace(cfg, seed=5)


def _band_change(trace, start, stop, factor):
    """Divide bandwidth by *factor* over snapshots [start, stop)."""
    beta = trace.beta.copy()
    beta[start:stop] = beta[start:stop] / factor
    return CalibrationTrace(
        alpha=trace.alpha, beta=beta, timestamps=trace.timestamps
    )


def _run(trace, ops=28):
    # threshold=10 parks Algorithm 1's own maintenance loop so any
    # re-calibration observed here is attributable to the regime detector.
    session = TraceSession(trace, time_step=8, threshold=10.0,
                           regime=RegimeConfig())
    for i in range(ops):
        session.run_collective("broadcast", root=i % trace.n_machines)
    return session


class TestSessionRegimeWiring:
    def test_permanent_band_change_forces_cold_recalibration(
        self, regime_base_trace
    ):
        session = _run(_band_change(regime_base_trace, 20, 40, 3.0))
        assert session.stats.regime_shifts == 1
        assert session.stats.recalibrations == 1
        counters = session.instrumentation.counters
        assert counters.get("session.regime.cold_recalibration") == 1
        assert counters.get("engine.solve.cold", 0) >= 2  # boot + forced cold
        assert any(r.regime == "shift" for r in session.stats.history)

    def test_equal_magnitude_transient_spike_is_absorbed(
        self, regime_base_trace
    ):
        session = _run(_band_change(regime_base_trace, 20, 21, 3.0))
        assert session.stats.regime_shifts == 0
        assert session.stats.regime_spikes >= 1
        assert session.stats.recalibrations == 0  # P_D stayed in service
        assert any(r.regime == "spike" for r in session.stats.history)

    def test_calm_trace_stays_stable(self, regime_base_trace):
        session = _run(regime_base_trace)
        assert session.stats.regime_shifts == 0
        assert session.stats.regime_spikes == 0
        assert {r.regime for r in session.stats.history} == {"stable"}

    def test_regime_off_by_default(self, regime_base_trace):
        session = TraceSession(regime_base_trace, time_step=8)
        session.broadcast()
        assert session.regime_detector is None
        assert session.stats.history[-1].regime == "stable"

    def test_regime_true_uses_defaults(self, regime_base_trace):
        session = TraceSession(regime_base_trace, time_step=8, regime=True)
        assert session.regime_detector is not None
        assert session.regime_detector.config == RegimeConfig()
