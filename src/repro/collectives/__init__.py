"""MPI collective operations over communication trees (paper Sec II-C).

The optimizer-facing pieces are the tree *constructors* — the MPICH-order
binomial tree (the Baseline) and Fastest-Node-First (the network-aware
choice) — and the *execution model* that prices a tree under the α-β model
for broadcast, scatter, reduce and gather.
"""

from .trees import CommTree, binomial_tree
from .fnf import fnf_tree
from .exec_model import (
    broadcast_time,
    scatter_time,
    scatterv_time,
    reduce_time,
    gather_time,
    gatherv_time,
    collective_time,
)
from .operations import Collective, build_tree, run_collective
from .composites import (
    CompositeTiming,
    alltoall_time,
    allgather_time,
    allreduce_time,
)
from .multiprocess import expand_to_processes, process_hosts

__all__ = [
    "expand_to_processes",
    "process_hosts",
    "CompositeTiming",
    "alltoall_time",
    "allgather_time",
    "allreduce_time",
    "CommTree",
    "binomial_tree",
    "fnf_tree",
    "broadcast_time",
    "scatter_time",
    "scatterv_time",
    "reduce_time",
    "gather_time",
    "gatherv_time",
    "collective_time",
    "Collective",
    "build_tree",
    "run_collective",
]
