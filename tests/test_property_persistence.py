"""Property-based tests for the persistence layer (hypothesis).

Two invariants the recovery protocol leans on, checked over generated
inputs rather than hand-picked cases:

1. **Checkpoints are lossless.** Any trace state — arbitrary finite/inf
   float payloads, arbitrary observation masks — survives
   ``write_checkpoint``/``read_checkpoint`` and
   ``trace_to_arrays``/``trace_from_arrays`` bit-for-bit.
2. **Journals degrade monotonically.** Cutting a journal file at *any*
   byte offset (a crash can stop a write anywhere) never makes ``scan``
   raise, and the surviving records are always an exact prefix of what was
   appended — never a partial or reordered record.
3. **Detector state is checkpoint-transparent.** Every registered regime
   detector, stopped at *any* point of *any* residual stream, comes back
   from a real checkpoint file as a clone that classifies the rest of the
   stream identically.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.cloudsim.trace import CalibrationTrace
from repro.core.detectors import build_detector, detector_names
from repro.persistence import (
    SnapshotJournal,
    read_checkpoint,
    trace_from_arrays,
    trace_sha256,
    trace_to_arrays,
    write_checkpoint,
)
from repro.persistence.state import STATE_SCHEMA_VERSION

finite_or_inf = st.floats(
    allow_nan=False, allow_infinity=True, width=64, min_value=None
)


@st.composite
def traces(draw):
    t = draw(st.integers(min_value=2, max_value=4))
    n = draw(st.integers(min_value=2, max_value=3))
    shape = (t, n, n)
    alpha = draw(npst.arrays(np.float64, shape, elements=finite_or_inf))
    beta = draw(npst.arrays(np.float64, shape, elements=finite_or_inf))
    steps = draw(
        npst.arrays(
            np.float64,
            (t,),
            elements=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        )
    )
    timestamps = np.cumsum(steps)  # non-decreasing by construction
    mask = draw(
        st.one_of(st.none(), npst.arrays(np.bool_, shape, elements=st.booleans()))
    )
    return CalibrationTrace(
        alpha=alpha, beta=beta, timestamps=timestamps, mask=mask
    )


class TestCheckpointLossless:
    @given(trace=traces())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_trace_arrays_round_trip_bit_exact(self, trace):
        back = trace_from_arrays(trace_to_arrays(trace))
        assert back.alpha.tobytes() == trace.alpha.tobytes()
        assert back.beta.tobytes() == trace.beta.tobytes()
        assert back.timestamps.tobytes() == trace.timestamps.tobytes()
        if trace.mask is None:
            assert back.mask is None
        else:
            np.testing.assert_array_equal(back.mask, trace.mask)
        assert trace_sha256(back) == trace_sha256(trace)

    @given(trace=traces(), cursor=st.integers(min_value=0, max_value=10**6))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_checkpoint_file_round_trip_bit_exact(self, tmp_path, trace, cursor):
        arrays = trace_to_arrays(trace)
        meta = {
            "schema": STATE_SCHEMA_VERSION,
            "journal_seq": cursor,
            "trace": {"sha256": trace_sha256(trace)},
        }
        path = tmp_path / "prop.ckpt"
        write_checkpoint(path, arrays, meta)
        ckpt = read_checkpoint(path)
        assert ckpt.meta == meta
        assert set(ckpt.arrays) == set(arrays)
        for key, value in arrays.items():
            got = ckpt.arrays[key]
            assert got.dtype == value.dtype and got.shape == value.shape
            assert got.tobytes() == value.tobytes()


records_strategy = st.lists(
    st.binary(min_size=0, max_size=64), min_size=0, max_size=12
)


class TestJournalTruncation:
    @given(records=records_strategy, data=st.data())
    @settings(
        max_examples=80,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_truncation_yields_a_clean_prefix(self, tmp_path, records, data):
        path = tmp_path / "prop.journal"
        path.unlink(missing_ok=True)
        with SnapshotJournal(path) as journal:
            for payload in records:
                journal.append(payload)
        blob = path.read_bytes()
        cut = data.draw(st.integers(min_value=0, max_value=len(blob)))
        path.write_bytes(blob[:cut])

        scan = SnapshotJournal.scan(path)  # must not raise at ANY offset
        if cut < 8:  # not even a whole header survives
            assert scan.records == () and scan.discarded_bytes == cut
            return
        assert list(scan.records) == records[: len(scan.records)]  # exact prefix
        if cut == len(blob):
            assert len(scan.records) == len(records)
            assert scan.discarded_bytes == 0

    @given(records=records_strategy, data=st.data())
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_reopen_after_truncation_continues_cleanly(
        self, tmp_path, records, data
    ):
        path = tmp_path / "prop.journal"
        path.unlink(missing_ok=True)
        with SnapshotJournal(path) as journal:
            for payload in records:
                journal.append(payload)
        blob = path.read_bytes()
        cut = data.draw(st.integers(min_value=8, max_value=len(blob)))
        path.write_bytes(blob[:cut])

        with SnapshotJournal(path) as journal:
            survivors = journal.seq
            assert survivors <= len(records)
            journal.append(b"after-the-crash")
        scan = SnapshotJournal.scan(path)
        assert list(scan.records) == records[:survivors] + [b"after-the-crash"]

    @given(records=st.lists(st.binary(min_size=1, max_size=64), min_size=1,
                            max_size=8),
           data=st.data())
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_body_byte_flip_yields_a_clean_prefix(
        self, tmp_path, records, data
    ):
        path = tmp_path / "prop.journal"
        path.unlink(missing_ok=True)
        with SnapshotJournal(path) as journal:
            for payload in records:
                journal.append(payload)
        blob = bytearray(path.read_bytes())
        # Flip any byte past the 8-byte header (magic corruption is a
        # different, loudly-reported failure mode).
        pos = data.draw(st.integers(min_value=8, max_value=len(blob) - 1))
        blob[pos] ^= data.draw(st.integers(min_value=1, max_value=255))
        path.write_bytes(bytes(blob))

        scan = SnapshotJournal.scan(path)  # must not raise
        assert list(scan.records) == records[: len(scan.records)]


# Residual norms are nonnegative and finite; the wide range makes streams
# mix calm stretches with spike- and shift-scale excursions.
residual_streams = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=0,
    max_size=40,
)


class TestDetectorStateCheckpointTransparent:
    @given(
        name=st.sampled_from(detector_names()),
        stream=residual_streams,
        data=st.data(),
    )
    @settings(
        max_examples=100,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_detector_any_split_round_trips(
        self, tmp_path, name, stream, data
    ):
        """Stop any registered detector anywhere in any stream, push its
        state through a real checkpoint file (the same ``{"name", "params",
        "state"}`` shape the session layer persists), rebuild, and the
        clone must finish the stream verdict-for-verdict."""
        split = data.draw(
            st.integers(min_value=0, max_value=len(stream)), label="split"
        )
        det = build_detector(name)
        for x in stream[:split]:
            det.observe(x)

        path = tmp_path / "det.ckpt"
        meta = {
            "schema": STATE_SCHEMA_VERSION,
            "regime": {
                "name": det.name,
                "params": det.params(),
                "state": det.state_dict(),
            },
        }
        write_checkpoint(path, {}, meta)
        stored = read_checkpoint(path).meta["regime"]
        assert stored == meta["regime"]  # JSON round-trip is exact

        clone = build_detector(stored["name"], stored["params"])
        clone.restore_state(stored["state"])
        assert clone.state_dict() == det.state_dict()
        for x in stream[split:]:
            assert clone.observe(x) is det.observe(x)
        assert clone.shifts == det.shifts
        assert clone.spikes == det.spikes
        assert clone.state_dict() == det.state_dict()
