"""Fig 5 — relative difference of long-term performance vs time step.

Paper shape: the difference shrinks as the time step grows, and the
selected step (smallest within 10% of the whole-trace oracle) is ten. The
trace here uses the upper end of EC2-like volatility — the knee's position
depends on measurement noise, and the paper's EC2 campaign evidently sat at
this level for ten snapshots to be necessary.
"""

from repro.cloudsim.dynamics import DynamicsConfig
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.experiments import fig05_time_step
from repro.experiments.report import format_series


def test_fig05_time_step(benchmark, emit):
    dyn = DynamicsConfig(
        volatility_sigma=0.25,
        spike_probability=0.08,
        spike_severity=6.0,
        hotspot_probability=0.06,
        hotspot_severity=2.0,
    )
    trace = generate_trace(
        TraceConfig(n_machines=24, n_snapshots=40, dynamics=dyn), seed=2014
    )

    result = benchmark(
        fig05_time_step.run,
        trace,
        time_steps=(2, 4, 6, 8, 10, 15, 20, 30),
        solver="apg",
    )

    emit(
        format_series(
            "time step",
            "relative difference Norm(P_D)",
            result.as_rows(),
            title=f"Fig 5 (selected step: {result.selected}, tolerance 10%)",
        )
    )

    d = result.relative_differences
    # Monotone improvement with more calibration rows.
    assert all(a >= b for a, b in zip(d, d[1:]))
    # The paper's knee: 10 snapshots are needed and sufficient.
    assert result.selected == 10
    assert d[result.time_steps.index(10)] <= 0.10
    assert d[result.time_steps.index(8)] > 0.10
