"""Model calibration (paper Sec IV-B).

Measuring all N² − N ordered links one by one is prohibitively slow, so the
paper pairs machines: each round, N/2 machines send while the other N/2
receive, covering N/2 links concurrently and the full matrix in ≈ 2N rounds.
This package provides that schedule, a calibrator that drives it against any
measurement substrate (trace replay or the netsim simulator), and the cost
model behind the paper's Fig 4 overhead numbers.
"""

from .schedule import pairing_rounds, PairingSchedule
from .calibrator import (
    Calibrator,
    CalibratorWindowSource,
    MeasurementSubstrate,
    SnapshotMeasurement,
    TraceSubstrate,
)
from .overhead import CalibrationCostModel, calibration_overhead_seconds
from .adaptive import AdaptiveStepResult, select_time_step_online

__all__ = [
    "AdaptiveStepResult",
    "select_time_step_online",
    "pairing_rounds",
    "PairingSchedule",
    "Calibrator",
    "CalibratorWindowSource",
    "MeasurementSubstrate",
    "SnapshotMeasurement",
    "TraceSubstrate",
    "CalibrationCostModel",
    "calibration_overhead_seconds",
]
