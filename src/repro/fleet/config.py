"""Fleet configuration: one frozen dataclass, canonical v1 names.

``FleetConfig`` follows the v1.1 naming convention shared with
:class:`~repro.api.SolveConfig` and :class:`~repro.api.SessionConfig`:
``n_workers`` (never ``workers``), ``window`` (never ``time_step`` /
``nsnap`` / ``n_snapshots``), ``threshold`` (never ``thresh``). As of
v1.1 the legacy spellings are gone everywhere: the
:func:`repro.api.run_fleet` facade raises ``TypeError`` (with a
did-you-mean hint) instead of remapping them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from .._validation import check_positive
from ..cloudsim.trace import CalibrationTrace
from ..core.batch import validate_batch_dtype
from ..core.detectors import validate_regime_detector
from ..core.elementwise import validate_ew_backend
from ..core.kernels import validate_backend
from ..core.streaming import StreamingConfig, validate_mode
from ..errors import ValidationError

__all__ = ["ClusterSpec", "FleetConfig", "ON_ERROR_POLICIES"]

_MB = 1024 * 1024

#: Valid values for :attr:`FleetConfig.on_error`.
ON_ERROR_POLICIES = ("raise", "degrade")


@dataclass(frozen=True)
class ClusterSpec:
    """One virtual cluster the fleet serves.

    Attributes
    ----------
    name:
        Unique fleet-wide identifier; also names the cluster's checkpoint
        directory under the fleet root.
    trace:
        The cluster's calibration trace (its ground truth). The scheduler
        copies it into a shared-memory block once; workers map views of
        that block instead of receiving pickled copies.
    operations:
        Per-cluster override of :attr:`FleetConfig.operations`; ``None``
        uses the fleet-wide value.
    """

    name: str
    trace: CalibrationTrace
    operations: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValidationError("cluster name must be a non-empty string")
        if any(sep in self.name for sep in (os.sep, "\x00")) or self.name in (
            ".",
            "..",
        ):
            raise ValidationError(
                f"cluster name {self.name!r} must be usable as a directory name"
            )
        if self.operations is not None and int(self.operations) < 1:
            raise ValidationError("operations must be >= 1 or None")


@dataclass(frozen=True)
class FleetConfig:
    """How the fleet scheduler runs many clusters concurrently.

    Attributes
    ----------
    n_workers:
        Worker processes in the pool.
    window:
        Calibration window length per cluster (the engine's ``time_step``;
        paper default 10).
    threshold:
        Maintenance threshold per cluster (paper default 1.0).
    consecutive:
        Consecutive above-threshold observations before re-calibration.
    nbytes:
        Message size for calibration weights and collectives.
    solver:
        RPCA backend for every cluster.
    warm_start:
        Warm-start re-calibration solves (per cluster).
    svd_backend:
        SVD kernel for every cluster's solver — one of
        :data:`repro.core.kernels.SVD_BACKENDS` (default ``"exact"``).
        Partial backends carry their rank-prediction state inside each
        session capsule, so it survives worker migration.
    elementwise_backend:
        Elementwise kernel for every cluster's step recurrences — one of
        :data:`repro.core.EW_BACKENDS` (default ``"reference"``). Sessions
        (:meth:`~repro.fleet.FleetScheduler.run`) additionally need a
        non-``exact`` *svd_backend* to use a non-reference value — the
        scheduler rejects the conflict up front. Batched sweeps
        (:meth:`~repro.fleet.FleetScheduler.run_sweep`) always run the
        batched gram-kernel path, so the knob applies regardless of
        *svd_backend* there.
    mode:
        Decomposition mode for every cluster's session — ``"batch"``
        (default, the historical full-window re-solves) or ``"streaming"``
        (O(row) per-snapshot folds with certified batch fallback; see
        :class:`~repro.core.streaming.StreamingDecomposer`). Streaming
        subspace state travels inside each session capsule, so it survives
        worker migration and SIGKILL-resume bit-identically.
    stream_tolerance:
        Streaming drift ceiling (``mode="streaming"`` only); ``None`` uses
        :class:`~repro.core.streaming.StreamingConfig`'s default.
    stream_refresh_every:
        Streaming re-orthonormalization cadence in folds
        (``mode="streaming"`` only).
    operations:
        Operations to run per cluster (unless a :class:`ClusterSpec`
        overrides it).
    op:
        Collective executed at each operation.
    batch_size:
        Operations per scheduler tick: the unit of work shipped to a
        worker. Larger batches amortize the capsule round-trip; smaller
        ones re-balance stragglers sooner. For batched sweeps
        (:meth:`~repro.fleet.FleetScheduler.run_sweep`) it is also the
        shard width: how many same-shape cluster windows stack into one
        ``(B, m, n)`` batched solve (bounding per-shard workspace memory).
    batch_dtype:
        Iterate dtype for batched sweep solves — one of
        :data:`repro.core.BATCH_DTYPES`. ``"float64"`` (default) is the
        bit-parity mode; ``"float32"`` runs the iteration loop in single
        precision with a float64 refinement pass.
    queue_depth:
        Bounded backlog beyond the workers themselves. The task queue
        holds at most ``n_workers + queue_depth`` entries, so a scheduler
        racing ahead of slow workers blocks (backpressure) instead of
        buffering the whole fleet's plan in memory.
    checkpoint_root:
        When set, every completed batch's capsule is written as a
        checkpoint under ``checkpoint_root/<cluster name>/`` — one
        directory per cluster under one fleet root — and a
        ``fleet.json`` manifest is written at the root.
    keep_checkpoints:
        Per-cluster checkpoint retention (see
        :class:`~repro.persistence.CheckpointStore`).
    on_error:
        What to do when a task exhausts its retry budget. ``"raise"``
        (default) aborts the run with a :class:`~repro.errors.FleetError`
        — the historical behavior. ``"degrade"`` quarantines the sick
        cluster (or sweep shard) into the report with a per-cluster
        ``status`` and traceback and keeps serving every healthy cluster;
        see ``docs/fleet_failures.md``.
    max_task_retries:
        Extra attempts per task after the first one fails (worker-side
        exception or deadline). Deterministic replay from the cluster's
        last capsule makes a retried task bit-identical to a never-failed
        one, so retries never change results — only whether they arrive.
    retry_backoff_s:
        Base delay before a task retry; doubles per failed attempt of the
        same task (capped at 30 s). ``0`` retries immediately.
    max_worker_restarts:
        Fleet-wide budget of worker-process respawns per run. A worker
        that dies (crash, OOM-kill, SIGKILL) is replaced while budget
        remains and its in-flight task is requeued from the scheduler's
        last capsule; past the budget the pool just shrinks, and the run
        fails only when no live worker is left with work still pending.
    task_timeout_s:
        Optional per-attempt deadline, measured from dispatch. A timed-out
        attempt's worker is killed (and respawned within budget) and the
        attempt counts against ``max_task_retries``. ``None`` disables
        deadlines.
    regime_detector:
        Online regime-shift detector every cluster's session runs — the
        name of a registered detector (``"cusum"``, ``"signature"``,
        ``"noise-robust"``, ``"drift"``; see
        :func:`repro.core.detectors.detector_names`). ``None`` (default)
        keeps the detector-free maintenance loop. Detector state travels
        inside each session capsule, so it survives worker migration and
        SIGKILL-resume bit-identically.
    regime_params:
        Config overrides for the named detector (keyword arguments of its
        config dataclass). Requires ``regime_detector``.
    """

    n_workers: int = 2
    window: int = 10
    threshold: float = 1.0
    consecutive: int = 1
    nbytes: float = 8.0 * _MB
    solver: str = "apg"
    warm_start: bool = True
    svd_backend: str = "exact"
    elementwise_backend: str = "reference"
    mode: str = "batch"
    stream_tolerance: float | None = None
    stream_refresh_every: int | None = None
    operations: int = 60
    op: str = "broadcast"
    batch_size: int = 8
    batch_dtype: str = "float64"
    queue_depth: int = 2
    checkpoint_root: str | None = field(default=None)
    keep_checkpoints: int = 3
    on_error: str = "raise"
    max_task_retries: int = 2
    retry_backoff_s: float = 0.05
    max_worker_restarts: int = 3
    task_timeout_s: float | None = None
    regime_detector: str | None = None
    regime_params: dict | None = None

    def __post_init__(self) -> None:
        for name in ("n_workers", "window", "consecutive", "operations",
                     "batch_size", "keep_checkpoints"):
            if int(getattr(self, name)) < 1:
                raise ValidationError(f"{name} must be >= 1")
        if int(self.queue_depth) < 0:
            raise ValidationError("queue_depth must be >= 0")
        check_positive(self.nbytes, "nbytes")
        if self.threshold < 0:
            raise ValidationError("threshold must be >= 0")
        validate_backend(self.svd_backend)
        # Name-only here: the exact×elementwise conflict is a session-path
        # concern, enforced by the scheduler's run()/run_serial() (sweeps
        # legitimately combine svd_backend="exact" with a fast elementwise
        # backend because they never touch the exact loop).
        validate_ew_backend(self.elementwise_backend)
        validate_batch_dtype(self.batch_dtype)
        validate_mode(self.mode)
        if self.mode != "streaming" and (
            self.stream_tolerance is not None
            or self.stream_refresh_every is not None
        ):
            raise ValidationError(
                "stream_tolerance/stream_refresh_every require mode='streaming'"
            )
        if self.mode == "streaming":
            # Reuse the knob validation (ranges) without keeping the object.
            StreamingConfig(
                **{
                    k: v
                    for k, v in (
                        ("tolerance", self.stream_tolerance),
                        ("refresh_every", self.stream_refresh_every),
                    )
                    if v is not None
                }
            )
        if self.on_error not in ON_ERROR_POLICIES:
            raise ValidationError(
                f"on_error must be one of {ON_ERROR_POLICIES}, "
                f"got {self.on_error!r}"
            )
        for name in ("max_task_retries", "max_worker_restarts"):
            if int(getattr(self, name)) < 0:
                raise ValidationError(f"{name} must be >= 0")
        if float(self.retry_backoff_s) < 0:
            raise ValidationError("retry_backoff_s must be >= 0")
        if self.task_timeout_s is not None and float(self.task_timeout_s) <= 0:
            raise ValidationError("task_timeout_s must be > 0 or None")
        validate_regime_detector(self.regime_detector, self.regime_params)

    @property
    def max_inflight(self) -> int:
        """Bound on dispatched-but-unfinished tasks (the backpressure cap)."""
        return int(self.n_workers) + int(self.queue_depth)
