"""Experiment drivers: one module per table/figure of the paper's Sec V.

Every driver exposes a ``run(...)`` function returning a plain result object
whose fields are the series/rows the paper plots, so benchmarks can print
them and tests can assert the qualitative shape (orderings, crossovers)
without re-deriving anything.
"""

from .harness import (
    ComparisonResult,
    ReplayContext,
    collective_comparison,
    mapping_comparison,
    empirical_cdf,
)
from .report import format_table, format_series

__all__ = [
    "ComparisonResult",
    "ReplayContext",
    "collective_comparison",
    "mapping_comparison",
    "empirical_cdf",
    "format_table",
    "format_series",
]
