"""K-ary fat-tree topology (Al-Fares et al.) for the flow simulator.

The paper starts "as a start" from the two-level tree (Fig 3); modern
datacenters deploy folded-Clos fat-trees with full bisection bandwidth.
This topology plugs into the same :class:`~repro.netsim.simulator.FlowSimulator`
(duck-typed: ``path``, ``path_latency``, ``capacities``, ``n_links``,
``n_machines``) and lets the simulation experiments ask how much of the
cloud's performance variability survives on a non-oversubscribed fabric —
with equal-cost multi-path routing resolved by a deterministic per-pair
hash, as ECMP does.

Geometry for parameter ``k`` (even, ≥ 2): ``k`` pods; each pod has ``k/2``
edge switches and ``k/2`` aggregation switches; ``(k/2)²`` core switches;
each edge switch hosts ``k/2`` machines — ``k³/4`` machines total.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import check_nonnegative, check_positive
from ..errors import TopologyError
from ..utils.seeding import derive_seed

__all__ = ["FatTreeTopology"]

GBIT = 1e9 / 8.0


@dataclass(frozen=True)
class FatTreeTopology:
    """K-ary fat tree with uniform link capacity.

    Link numbering (each physical cable = up/down directed pair):

    * ``[0, H)`` host→edge, ``[H, 2H)`` edge→host (``H`` = n_machines),
    * ``[2H, 2H+E)`` edge→agg up, ``[2H+E, 2H+2E)`` agg→edge down, where
      ``E = k·(k/2)·(k/2)`` counts (edge switch, agg switch) pairs per pod,
    * ``[2H+2E, 2H+2E+C)`` agg→core up, ``[…, …+C)`` core→agg down, where
      ``C = k·(k/2)·(k/2)`` counts (agg switch, core port) pairs.
    """

    k: int = 4
    link_bandwidth: float = 1.0 * GBIT
    hop_latency: float = 2.5e-5
    seed: int = 0
    capacities: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        k = int(self.k)
        if k < 2 or k % 2 != 0:
            raise TopologyError("k must be an even integer >= 2")
        check_positive(self.link_bandwidth, "link_bandwidth")
        check_nonnegative(self.hop_latency, "hop_latency")
        caps = np.full(self.n_links, float(self.link_bandwidth))
        caps.setflags(write=False)
        object.__setattr__(self, "capacities", caps)

    # -- geometry ------------------------------------------------------------
    @property
    def half(self) -> int:
        return self.k // 2

    @property
    def n_machines(self) -> int:
        return self.k**3 // 4

    @property
    def n_edge_pairs(self) -> int:
        # (pod, edge, agg) triples: k pods x (k/2) edges x (k/2) aggs.
        return self.k * self.half * self.half

    @property
    def n_core_pairs(self) -> int:
        # (pod, agg, core-port) triples: k pods x (k/2) aggs x (k/2) ports.
        return self.k * self.half * self.half

    @property
    def n_links(self) -> int:
        return 2 * self.n_machines + 2 * self.n_edge_pairs + 2 * self.n_core_pairs

    def pod_of(self, machine: int) -> int:
        self._check_machine(machine)
        return machine // (self.half * self.half)

    def edge_of(self, machine: int) -> int:
        """Edge-switch index within the pod (0..k/2-1)."""
        self._check_machine(machine)
        return (machine % (self.half * self.half)) // self.half

    def _check_machine(self, machine: int) -> None:
        if not 0 <= machine < self.n_machines:
            raise TopologyError(f"machine {machine} out of range")

    # -- link ids -----------------------------------------------------------
    def host_up(self, machine: int) -> int:
        return machine

    def host_down(self, machine: int) -> int:
        return self.n_machines + machine

    def _edge_pair_index(self, pod: int, edge: int, agg: int) -> int:
        return (pod * self.half + edge) * self.half + agg

    def edge_agg_up(self, pod: int, edge: int, agg: int) -> int:
        return 2 * self.n_machines + self._edge_pair_index(pod, edge, agg)

    def agg_edge_down(self, pod: int, edge: int, agg: int) -> int:
        return 2 * self.n_machines + self.n_edge_pairs + self._edge_pair_index(
            pod, edge, agg
        )

    def _core_pair_index(self, pod: int, agg: int, port: int) -> int:
        return (pod * self.half + agg) * self.half + port

    def agg_core_up(self, pod: int, agg: int, port: int) -> int:
        base = 2 * self.n_machines + 2 * self.n_edge_pairs
        return base + self._core_pair_index(pod, agg, port)

    def core_agg_down(self, pod: int, agg: int, port: int) -> int:
        base = 2 * self.n_machines + 2 * self.n_edge_pairs + self.n_core_pairs
        return base + self._core_pair_index(pod, agg, port)

    # -- routing ---------------------------------------------------------------
    def _ecmp_choice(self, src: int, dst: int, n_options: int) -> int:
        """Deterministic per-pair path choice (hash-based, like ECMP)."""
        return derive_seed(self.seed, "ecmp", src, dst) % n_options

    def path(self, src: int, dst: int) -> tuple[int, ...]:
        if src == dst:
            raise TopologyError("src and dst must differ")
        self._check_machine(src)
        self._check_machine(dst)
        sp, se = self.pod_of(src), self.edge_of(src)
        dp, de = self.pod_of(dst), self.edge_of(dst)
        if sp == dp and se == de:
            # Same edge switch.
            return (self.host_up(src), self.host_down(dst))
        if sp == dp:
            # Same pod, different edge: up to one of k/2 aggs, back down.
            agg = self._ecmp_choice(src, dst, self.half)
            return (
                self.host_up(src),
                self.edge_agg_up(sp, se, agg),
                self.agg_edge_down(dp, de, agg),
                self.host_down(dst),
            )
        # Cross-pod: edge→agg→core→agg→edge; (k/2)² equal-cost core choices.
        choice = self._ecmp_choice(src, dst, self.half * self.half)
        agg, port = divmod(choice, self.half)
        return (
            self.host_up(src),
            self.edge_agg_up(sp, se, agg),
            self.agg_core_up(sp, agg, port),
            self.core_agg_down(dp, agg, port),
            self.agg_edge_down(dp, de, agg),
            self.host_down(dst),
        )

    def path_latency(self, src: int, dst: int) -> float:
        return self.hop_latency * len(self.path(src, dst))

    def same_rack(self, a: int, b: int) -> bool:
        """Edge-switch locality (the fat-tree analogue of a rack)."""
        return self.pod_of(a) == self.pod_of(b) and self.edge_of(a) == self.edge_of(b)
