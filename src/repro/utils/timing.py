"""Wall-clock timing helper used by experiment drivers.

Profiling guidance for this package follows the standard scientific-Python
workflow: measure first (``Timer`` / ``timeit`` / ``cProfile``), then optimize
the measured bottleneck. ``Timer`` is intentionally tiny — a context manager
around :func:`time.perf_counter` that accumulates across re-entries so a hot
loop can be timed without allocating per iteration.
"""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Accumulating wall-clock timer.

    Examples
    --------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    __slots__ = ("elapsed", "_start")

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None
        self.elapsed += time.perf_counter() - self._start
        self._start = None

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None
