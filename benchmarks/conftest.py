"""Shared benchmark helpers.

Every benchmark regenerates one table/figure of the paper at a meaningful
scale and prints the rows it produces, so the tee'd output of
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction record.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def emit(capfd):
    """Print *text* to the real terminal, bypassing pytest capture."""

    def _emit(text: str) -> None:
        with capfd.disabled():
            print()
            print(text)

    return _emit
