"""Write-ahead snapshot journal: append-only, CRC32-framed, torn-tail tolerant.

A :class:`SnapshotJournal` is the WAL half of the crash-safety story: every
session operation is appended *before* it executes, so a recovery can replay
everything the dead process had committed to. The file format is deliberately
dumb — no index, no compaction, no mmap:

``RPJL`` magic + ``uint32`` format version, then zero or more frames of
``uint32`` payload length + ``uint32`` CRC32(payload) + payload bytes
(all little-endian).

The only interesting property is what happens when a process dies mid-append:
the file ends in a *torn* frame — a partial header or a payload shorter than
its declared length — or, on real hardware, a frame whose bytes were only
partially flushed (CRC mismatch). :meth:`SnapshotJournal.replay` treats any
such frame as the end of the journal: it never raises on a truncated file and
never yields a partially-applied record, which is exactly the atomicity unit
recovery needs (an operation either replays fully or never happened).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Iterator

from ..errors import PersistenceError

__all__ = ["JOURNAL_MAGIC", "JOURNAL_VERSION", "JournalScan", "SnapshotJournal"]

JOURNAL_MAGIC = b"RPJL"
JOURNAL_VERSION = 1

_HEADER = struct.Struct("<4sI")  # magic, version
_FRAME = struct.Struct("<II")  # payload length, crc32


@dataclass(frozen=True)
class JournalScan:
    """Result of reading a journal: the intact records plus tail accounting.

    ``discarded_bytes`` counts trailing bytes that did not form a complete,
    checksum-valid frame (0 for a cleanly closed journal). ``valid_bytes`` is
    the offset up to which the file is known good — an appender resuming an
    existing journal continues from there, amputating the torn tail.
    """

    records: tuple[bytes, ...]
    valid_bytes: int
    discarded_bytes: int


def _scan(blob: bytes) -> JournalScan:
    """Parse *blob* into frames, stopping at the first torn/corrupt one."""
    if len(blob) < _HEADER.size:
        return JournalScan(records=(), valid_bytes=0, discarded_bytes=len(blob))
    magic, version = _HEADER.unpack_from(blob, 0)
    if magic != JOURNAL_MAGIC or version != JOURNAL_VERSION:
        raise PersistenceError(
            f"not a journal file (magic {magic!r}, version {version})"
        )
    records: list[bytes] = []
    offset = _HEADER.size
    while True:
        if offset + _FRAME.size > len(blob):
            break  # torn frame header (or clean EOF)
        length, crc = _FRAME.unpack_from(blob, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > len(blob):
            break  # torn payload
        payload = blob[start:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            break  # partially-flushed or corrupted frame
        records.append(payload)
        offset = end
    return JournalScan(
        records=tuple(records),
        valid_bytes=offset,
        discarded_bytes=len(blob) - offset,
    )


class SnapshotJournal:
    """Append-only journal of one session's operation records.

    Parameters
    ----------
    path:
        Journal file; created (with its header) if absent. An existing file
        is scanned first and any torn tail is truncated away, so appends
        always extend a checksum-valid prefix.
    fsync:
        Flush-and-fsync after every append. SIGKILL safety does not need it
        (the page cache survives the process); power-loss safety does.
        Default off — the chaos harness kills processes, not machines.
    """

    def __init__(self, path: str | os.PathLike, *, fsync: bool = False) -> None:
        self.path = os.fspath(path)
        self.fsync = bool(fsync)
        if os.path.exists(self.path):
            scan = _scan(_read_file(self.path))  # raises on foreign files
            self._seq = len(scan.records)
            if scan.valid_bytes == 0:
                # Empty or torn mid-header-write: start the journal fresh.
                self._write_header()
            elif scan.discarded_bytes:
                with open(self.path, "r+b") as fh:
                    fh.truncate(scan.valid_bytes)
        else:
            self._seq = 0
            self._write_header()
        self._fh = open(self.path, "ab")

    def _write_header(self) -> None:
        with open(self.path, "wb") as fh:
            fh.write(_HEADER.pack(JOURNAL_MAGIC, JOURNAL_VERSION))
            fh.flush()
            os.fsync(fh.fileno())

    # -- writing ----------------------------------------------------------
    @property
    def seq(self) -> int:
        """Number of records committed so far (next record's index)."""
        return self._seq

    def append(self, payload: bytes) -> int:
        """Commit one record; returns its sequence index."""
        frame = _FRAME.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        self._fh.write(frame)
        self._fh.write(payload)
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        seq = self._seq
        self._seq += 1
        return seq

    def append_json(self, record: dict[str, Any]) -> int:
        """Commit one JSON-encoded record (the session's record format)."""
        return self.append(
            json.dumps(record, separators=(",", ":"), sort_keys=True).encode("utf-8")
        )

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self._fh.close()

    def __enter__(self) -> "SnapshotJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- reading ----------------------------------------------------------
    @classmethod
    def scan(cls, path: str | os.PathLike) -> JournalScan:
        """Read every intact record of the journal at *path*.

        Never raises on truncation: a torn tail simply ends the record
        stream (see module docstring). Raises :class:`PersistenceError`
        only when the file is not a journal at all.
        """
        return _scan(_read_file(os.fspath(path)))

    @classmethod
    def replay(cls, path: str | os.PathLike) -> Iterator[dict[str, Any]]:
        """Iterate the journal's records decoded as JSON objects."""
        for payload in cls.scan(path).records:
            yield json.loads(payload.decode("utf-8"))


def _read_file(path: str) -> bytes:
    with open(path, "rb") as fh:
        return fh.read()
