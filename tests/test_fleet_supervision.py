"""Supervision-layer tests: retries, deadlines, worker death, shm hygiene.

These tests drive real worker processes but inject deterministic failures
by monkeypatching ``repro.fleet.worker`` internals in the parent: under the
``fork`` start method the patched module state is inherited by every worker
the scheduler spawns afterwards. Flag files (touched by the test, removed
by the first attempt that consumes them) turn "fail once, then heal" into
a deterministic script rather than a race.
"""

import multiprocessing as mp
import os
import signal
import time

import pytest

import repro.fleet.worker as worker_mod
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.errors import FleetError
from repro.fleet import ClusterSpec, FleetConfig, FleetScheduler

pytestmark = [pytest.mark.fleet, pytest.mark.faults]

requires_fork = pytest.mark.skipif(
    mp.get_start_method() != "fork",
    reason="worker fault injection relies on fork inheriting the patch",
)
requires_dev_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="needs /dev/shm to observe segments"
)


def _trace(seed, *, n_machines=6, n_snapshots=16):
    return generate_trace(
        TraceConfig(n_machines=n_machines, n_snapshots=n_snapshots), seed=seed
    )


def _clusters(n):
    return [ClusterSpec(name=f"c{i}", trace=_trace(70 + i)) for i in range(n)]


CFG = dict(operations=12, batch_size=4, window=6, n_workers=2)


def _patch_batches(monkeypatch, hook):
    """Route every worker-side batch through ``hook(real, task, traces)``."""
    real = worker_mod._run_batch
    monkeypatch.setattr(
        worker_mod, "_run_batch", lambda task, traces: hook(real, task, traces)
    )


def _segments():
    return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}


class TestTaskRetries:
    @requires_fork
    def test_transient_failure_retried_to_success(self, monkeypatch, tmp_path):
        flag = tmp_path / "fail-once"
        flag.touch()

        def hook(real, task, traces):
            if task.cluster == "c0" and flag.exists():
                flag.unlink()
                raise RuntimeError("injected transient failure")
            return real(task, traces)

        _patch_batches(monkeypatch, hook)
        clusters = _clusters(3)
        config = FleetConfig(max_task_retries=2, retry_backoff_s=0.01, **CFG)
        serial = FleetScheduler(clusters, config).run_serial()
        report = FleetScheduler(clusters, config).run()
        assert report.statuses() == {"c0": "ok", "c1": "ok", "c2": "ok"}
        assert report.clusters["c0"].retries >= 1
        assert report.health()["task_retries"] >= 1
        # The healed run is still bit-identical to the failure-free serial one.
        for name, rep in report.clusters.items():
            ref = serial.clusters[name].constant_row
            assert rep.constant_row.tobytes() == ref.tobytes()

    @requires_fork
    def test_exhausted_retries_raise_with_cluster(self, monkeypatch):
        def hook(real, task, traces):
            if task.cluster == "c0":
                raise RuntimeError("injected persistent failure")
            return real(task, traces)

        _patch_batches(monkeypatch, hook)
        config = FleetConfig(max_task_retries=1, retry_backoff_s=0.01, **CFG)
        with pytest.raises(FleetError, match="'c0' failed after 2 attempt") as exc:
            FleetScheduler(_clusters(2), config).run()
        assert exc.value.cluster == "c0"
        assert "injected persistent failure" in exc.value.worker_traceback

    @requires_fork
    def test_degrade_quarantines_persistent_failure(self, monkeypatch):
        def hook(real, task, traces):
            if task.cluster == "c1":
                raise RuntimeError("injected persistent failure")
            return real(task, traces)

        _patch_batches(monkeypatch, hook)
        config = FleetConfig(
            on_error="degrade", max_task_retries=1, retry_backoff_s=0.01, **CFG
        )
        report = FleetScheduler(_clusters(3), config).run()
        assert report.degraded
        sick = report.clusters["c1"]
        assert sick.status == "quarantined"
        assert not sick.ok
        assert "injected persistent failure" in sick.error
        assert sick.retries == 1
        assert report.statuses()["c0"] == "ok"
        assert report.statuses()["c2"] == "ok"
        assert report.health()["clusters_quarantined"] == 1


class TestDeadlines:
    @requires_fork
    def test_stuck_attempt_is_killed_and_retried(self, monkeypatch, tmp_path):
        flag = tmp_path / "hang-once"
        flag.touch()

        def hook(real, task, traces):
            if task.cluster == "c0" and flag.exists():
                flag.unlink()
                time.sleep(60.0)
            return real(task, traces)

        _patch_batches(monkeypatch, hook)
        config = FleetConfig(
            task_timeout_s=1.0, max_task_retries=1, retry_backoff_s=0.01, **CFG
        )
        report = FleetScheduler(_clusters(2), config).run()
        assert report.statuses() == {"c0": "ok", "c1": "ok"}
        health = report.health()
        assert health["task_timeouts"] >= 1
        # The stuck worker was killed and replaced (not charged to the budget).
        assert health["worker_restarts"] >= 1

    @requires_fork
    def test_deadline_exhaustion_degrades_to_failed(self, monkeypatch):
        def hook(real, task, traces):
            if task.cluster == "c0":
                time.sleep(60.0)
            return real(task, traces)

        _patch_batches(monkeypatch, hook)
        config = FleetConfig(
            on_error="degrade", task_timeout_s=0.5, max_task_retries=0,
            retry_backoff_s=0.01, **CFG,
        )
        report = FleetScheduler(_clusters(2), config).run()
        assert report.degraded
        sick = report.clusters["c0"]
        assert sick.status == "failed"
        assert "deadline exceeded" in sick.error
        assert report.statuses()["c1"] == "ok"


class TestWorkerDeath:
    @requires_fork
    def test_mid_task_kill_is_replayed_bit_identically(self, monkeypatch, tmp_path):
        flag = tmp_path / "die-once"
        flag.touch()

        def hook(real, task, traces):
            if task.cluster == "c1" and flag.exists():
                flag.unlink()
                os.kill(os.getpid(), signal.SIGKILL)
            return real(task, traces)

        _patch_batches(monkeypatch, hook)
        clusters = _clusters(3)
        config = FleetConfig(max_worker_restarts=2, **CFG)
        serial = FleetScheduler(clusters, config).run_serial()
        report = FleetScheduler(clusters, config).run()
        assert report.statuses() == {"c0": "ok", "c1": "ok", "c2": "ok"}
        assert report.health()["worker_restarts"] >= 1
        # Requeue-on-death is deterministic replay, never a charged retry.
        assert report.clusters["c1"].retries == 0
        for name, rep in report.clusters.items():
            ref = serial.clusters[name].constant_row
            assert rep.constant_row.tobytes() == ref.tobytes()

    @requires_fork
    def test_no_workers_left_raises_with_exitcodes_and_stuck(self, monkeypatch):
        def hook(real, task, traces):
            os.kill(os.getpid(), signal.SIGKILL)

        _patch_batches(monkeypatch, hook)
        config = FleetConfig(
            operations=12, batch_size=4, window=6,
            n_workers=1, max_worker_restarts=0,
        )
        clusters = [ClusterSpec(name="lonely", trace=_trace(99))]
        with pytest.raises(FleetError) as exc:
            FleetScheduler(clusters, config).run()
        message = str(exc.value)
        assert "-9" in message  # the SIGKILL exit code
        assert "restart budget (0)" in message
        assert "lonely" in message  # the stuck cluster is named


class TestSweepSupervision:
    @requires_fork
    def test_degrade_quarantines_failing_shard(self, monkeypatch):
        real = worker_mod.solve_shard

        def hook(names, tps, **kwargs):
            if "c0" in names:
                raise RuntimeError("injected shard failure")
            return real(names, tps, **kwargs)

        monkeypatch.setattr(worker_mod, "solve_shard", hook)
        config = FleetConfig(
            on_error="degrade", max_task_retries=1, retry_backoff_s=0.01,
            window=6, batch_size=2, n_workers=2,
        )
        report = FleetScheduler(_clusters(4), config).run_sweep()
        assert report.degraded
        statuses = report.statuses()
        # batch_size=2 over same-shape c0..c3: the poisoned shard is {c0, c1}
        # and the whole shard is quarantined together.
        assert {n for n, s in statuses.items() if s == "quarantined"} == {"c0", "c1"}
        assert statuses["c2"] == "ok" and statuses["c3"] == "ok"
        assert "injected shard failure" in report.clusters["c0"].error
        assert report.health()["clusters_quarantined"] == 2
        assert report.health()["task_retries"] >= 1


class TestShmHygiene:
    """The scheduler must never leak shared-memory segments, even on failure."""

    @requires_fork
    @requires_dev_shm
    def test_no_leak_when_drive_raises(self, monkeypatch):
        def hook(real, task, traces):
            raise RuntimeError("injected persistent failure")

        _patch_batches(monkeypatch, hook)
        before = _segments()
        config = FleetConfig(max_task_retries=0, retry_backoff_s=0.01, **CFG)
        with pytest.raises(FleetError):
            FleetScheduler(_clusters(2), config).run()
        assert _segments() - before == set()

    @requires_fork
    @requires_dev_shm
    def test_no_leak_when_workers_crash(self, monkeypatch):
        def hook(real, task, traces):
            os.kill(os.getpid(), signal.SIGKILL)

        _patch_batches(monkeypatch, hook)
        before = _segments()
        config = FleetConfig(max_worker_restarts=0, **CFG)
        with pytest.raises(FleetError):
            FleetScheduler(_clusters(2), config).run()
        assert _segments() - before == set()

    @requires_fork
    @requires_dev_shm
    def test_sweep_no_leak_when_shard_fails(self, monkeypatch):
        def boom(names, tps, **kwargs):
            raise RuntimeError("injected shard failure")

        monkeypatch.setattr(worker_mod, "solve_shard", boom)
        before = _segments()
        config = FleetConfig(
            max_task_retries=0, retry_backoff_s=0.01,
            window=6, batch_size=2, n_workers=2,
        )
        with pytest.raises(FleetError):
            FleetScheduler(_clusters(4), config).run_sweep()
        assert _segments() - before == set()
