"""Fig 7 — overall comparison on the EC2-like trace.

Broadcast, scatter and topology mapping on the default cluster, Baseline vs
Heuristics vs RPCA, means over 100+ repetitions normalized to Baseline, plus
the broadcast CDF. Paper shape: Heuristics and RPCA beat Baseline by
32–40%; RPCA beats Heuristics by a further 8–10% at EC2's Norm(N_E) ≈ 0.1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cloudsim.trace import CalibrationTrace
from ..mapping.taskgraph import random_task_graph
from ..strategies.baseline import BaselineStrategy
from ..strategies.heuristics import HeuristicStrategy
from ..strategies.rpca import RPCAStrategy
from ..utils.seeding import derive_seed, spawn_rng
from .harness import ComparisonResult, ReplayContext, collective_comparison, mapping_comparison

__all__ = ["Fig07Result", "run", "default_strategies"]


def default_strategies(*, solver: str = "apg", time_step: int = 10) -> list:
    """The three EC2 arms (Topology-aware is netsim-only, as in the paper)."""
    return [
        BaselineStrategy(),
        HeuristicStrategy("mean"),
        RPCAStrategy(solver, time_step=time_step),
    ]


@dataclass(frozen=True)
class Fig07Result:
    """Per-application comparison results plus the broadcast CDF."""

    broadcast: ComparisonResult
    scatter: ComparisonResult
    mapping: ComparisonResult
    norm_ne: float

    def normalized_table(self) -> list[tuple[str, float, float, float]]:
        rows = []
        for name in self.broadcast.times:
            rows.append(
                (
                    name,
                    self.broadcast.normalized_means()[name],
                    self.scatter.normalized_means()[name],
                    self.mapping.normalized_means()[name],
                )
            )
        return rows

    def broadcast_cdf(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        return self.broadcast.cdf(name)


def run(
    trace: CalibrationTrace,
    *,
    time_step: int = 10,
    nbytes: float = 8.0 * 1024 * 1024,
    repetitions: int = 100,
    n_tasks: int | None = None,
    solver: str = "apg",
    seed: int = 0,
) -> Fig07Result:
    """Run the three applications over one trace replay."""
    ctx = ReplayContext(trace=trace, time_step=time_step, nbytes=nbytes)
    strategies = default_strategies(solver=solver, time_step=time_step)

    bcast = collective_comparison(
        ctx, strategies, op="broadcast", nbytes=nbytes,
        repetitions=repetitions, seed=derive_seed(seed, "bcast"),
    )
    # Per the paper, scatter's 8 MB is the message size; each node's block.
    scat = collective_comparison(
        ctx, strategies, op="scatter", nbytes=nbytes / trace.n_machines,
        repetitions=repetitions, seed=derive_seed(seed, "scatter"),
    )
    rng = spawn_rng(derive_seed(seed, "graphs"))
    nt = n_tasks if n_tasks is not None else trace.n_machines
    graphs = [
        random_task_graph(nt, seed=rng)
        for _ in range(max(10, repetitions // 4))
    ]
    mapping = mapping_comparison(ctx, strategies, graphs, seed=derive_seed(seed, "map"))

    rpca = next(s for s in strategies if isinstance(s, RPCAStrategy))
    return Fig07Result(
        broadcast=bcast, scatter=scat, mapping=mapping, norm_ne=rpca.norm_ne
    )
