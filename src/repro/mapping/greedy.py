"""Greedy heuristic topology mapping (paper Sec II-C, after Hoefler & Snir).

Inputs: the task graph G (edge weight = data volume) and the machine graph H
(edge weight = network bandwidth; for a virtual cluster H is complete, built
from the all-link performance matrix). The algorithm:

1. Map the heaviest machine vertex ``v0`` (largest total bandwidth over its
   links) to the heaviest task vertex ``s0`` (largest total data volume).
2. Repeatedly expand from already-mapped pairs: the mapped pair whose task
   has the heaviest connection to an unmapped task wins; that neighbor task
   is mapped to the unmapped machine with the best bandwidth to the already
   mapped machine.
3. Disconnected remainders restart from step 1 among unmapped vertices.

This keeps the paper's intent exactly — "the task with the largest data
volume to transfer is mapped to the machines with the highest total
bandwidth of all its associated links", then heaviest neighbors to heaviest
connections — while being deterministic about tie order (lowest index wins).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_square_matrix
from ..errors import MappingError
from .taskgraph import TaskGraph

__all__ = ["greedy_mapping"]


def greedy_mapping(task_graph: TaskGraph, bandwidth: np.ndarray) -> np.ndarray:
    """Map tasks to machines greedily by volume/bandwidth affinity.

    Parameters
    ----------
    task_graph:
        The communication pattern G.
    bandwidth:
        N×N machine-graph weights where *larger* is better (bytes/second or
        any monotone proxy). Must cover at least ``n_tasks`` machines; with
        more machines than tasks the heaviest machines are used.

    Returns
    -------
    numpy.ndarray
        ``mapping[task] = machine`` with distinct machines per task.
    """
    bw = as_square_matrix(bandwidth, "bandwidth")
    n_machines = bw.shape[0]
    n_tasks = task_graph.n_tasks
    if n_machines < n_tasks:
        raise MappingError(
            f"{n_tasks} tasks cannot map onto {n_machines} machines"
        )
    vols = task_graph.volumes
    # Symmetrized affinity: communication in either direction binds a pair.
    sym_vols = vols + vols.T
    sym_bw = (bw + bw.T) / 2.0
    np.fill_diagonal(sym_bw, 0.0)

    task_heft = sym_vols.sum(axis=1)
    machine_heft = sym_bw.sum(axis=1)

    mapping = np.full(n_tasks, -1, dtype=np.intp)
    machine_used = np.zeros(n_machines, dtype=bool)
    task_mapped = np.zeros(n_tasks, dtype=bool)

    def seed_pair() -> None:
        s0 = int(np.argmax(np.where(task_mapped, -np.inf, task_heft)))
        v0 = int(np.argmax(np.where(machine_used, -np.inf, machine_heft)))
        mapping[s0] = v0
        task_mapped[s0] = True
        machine_used[v0] = True

    seed_pair()
    while not task_mapped.all():
        # Heaviest connection from any mapped task to any unmapped task.
        conn = sym_vols[np.ix_(np.flatnonzero(task_mapped), np.flatnonzero(~task_mapped))]
        if conn.size == 0 or conn.max() <= 0:
            seed_pair()  # disconnected component: restart
            continue
        mi, uj = np.unravel_index(int(np.argmax(conn)), conn.shape)
        anchor_task = int(np.flatnonzero(task_mapped)[mi])
        next_task = int(np.flatnonzero(~task_mapped)[uj])
        anchor_machine = int(mapping[anchor_task])
        # Best-bandwidth unmapped machine relative to the anchor machine.
        cand = np.where(machine_used, -np.inf, sym_bw[anchor_machine])
        next_machine = int(np.argmax(cand))
        if not np.isfinite(cand[next_machine]):
            raise MappingError("ran out of machines during greedy expansion")
        mapping[next_task] = next_machine
        task_mapped[next_task] = True
        machine_used[next_machine] = True
    return mapping
