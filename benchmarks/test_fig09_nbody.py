"""Fig 9(b, c) — N-body across #Step and across message sizes.

Run on 64 VMs: per-machine computation shrinks with cluster size, so the
paper's communication-dominant regime (their 196 instances) needs a
reasonably large cluster.

Paper shape: as #Step (9b) or message size (9c) grows, overheads amortize
and the network-aware gain approaches ~25% over Baseline and ~10% over
Heuristics in total time (36% in communication time).
"""

from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.experiments import fig09_apps
from repro.experiments.report import format_table

KB = 1024
MB = 1024 * 1024
STEPS = (10, 40, 160, 640, 2560)
SIZES = (1 * KB, 8 * KB, 64 * KB, 256 * KB, 1 * MB)


def test_fig09b_nbody_steps(benchmark, emit):
    trace = generate_trace(TraceConfig(n_machines=64, n_snapshots=30), seed=10)

    result = benchmark.pedantic(
        fig09_apps.run_nbody_steps,
        args=(trace,),
        kwargs=dict(step_counts=STEPS, message_bytes=1.0 * MB, time_step=10, solver="apg"),
        rounds=1,
        iterations=1,
    )

    emit(
        format_table(
            ["#Step", "strategy", "comp (s)", "comm (s)", "overhead (s)", "total (s)"],
            result.as_rows(),
            title="Fig 9b: N-body vs #Step (1 MB messages), 64 VMs",
        )
    )

    gains = [result.improvement(float(s), "RPCA", "Baseline") for s in STEPS]
    assert gains[-1] > gains[0]  # overhead amortizes with more steps
    assert gains[-1] > 0.10
    # Communication-time improvement at the top (paper: ~36%).
    comm = {
        p.strategy: p.breakdown.communication
        for p in result.points
        if p.x == float(STEPS[-1])
    }
    assert 1.0 - comm["RPCA"] / comm["Baseline"] > 0.15


def test_fig09c_nbody_message_size(benchmark, emit):
    trace = generate_trace(TraceConfig(n_machines=64, n_snapshots=30), seed=11)

    result = benchmark.pedantic(
        fig09_apps.run_nbody_msgsize,
        args=(trace,),
        kwargs=dict(message_sizes=SIZES, n_steps=2560, time_step=10, solver="apg"),
        rounds=1,
        iterations=1,
    )

    emit(
        format_table(
            ["message (bytes)", "strategy", "comp (s)", "comm (s)", "overhead (s)", "total (s)"],
            result.as_rows(),
            title="Fig 9c: N-body vs message size (#Step = 2560), 64 VMs",
        )
    )

    gains = [result.improvement(float(s), "RPCA", "Baseline") for s in SIZES]
    assert gains[-1] > gains[0]  # larger messages → larger improvement
    assert gains[-1] > 0.10
