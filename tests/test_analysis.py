"""Unit tests for trace analytics: stability reports and changepoints."""

import numpy as np
import pytest

from repro.analysis.changepoints import detect_regime_changes
from repro.analysis.tracestats import link_band_table, trace_stability_report
from repro.cloudsim.bands import BandTiers
from repro.cloudsim.dynamics import DynamicsConfig
from repro.cloudsim.trace import CalibrationTrace
from repro.cloudsim.tracegen import TraceConfig, generate_trace

MB = 1024 * 1024


class TestLinkBandTable:
    def test_covers_all_ordered_pairs(self, tiny_trace):
        table = link_band_table(tiny_trace)
        assert len(table) == 4 * 3

    def test_band_centers_positive(self, tiny_trace):
        for _, _, stats in link_band_table(tiny_trace):
            assert stats.center > 0


class TestStabilityReport:
    def test_default_trace(self, small_trace):
        rep = trace_stability_report(small_trace)
        assert rep.n_machines == 8 and rep.n_snapshots == 24
        assert 0.0 < rep.norm_ne < 0.5
        assert rep.band_spread > 1.0
        assert 0.0 <= rep.median_volatility < 0.5
        assert rep.verdict in (
            "stable", "moderately-stable", "dynamic", "too-dynamic"
        )

    def test_calm_trace_is_tight(self, calm_trace):
        rep = trace_stability_report(calm_trace)
        assert rep.norm_ne < 0.01
        assert rep.median_volatility < 0.01
        assert rep.spike_fraction < 0.05
        assert rep.verdict == "stable"

    def test_band_spread_reflects_tiers(self, small_trace, calm_trace):
        # Both traces mix rack tiers, so spread well above 1.
        assert trace_stability_report(calm_trace).band_spread > 1.5


class TestChangepoints:
    def _two_regime_trace(self):
        cfg_a = TraceConfig(
            n_machines=6,
            n_snapshots=15,
            dynamics=DynamicsConfig(
                volatility_sigma=0.03, spike_probability=0.0,
                hotspot_probability=0.0,
            ),
        )
        a = generate_trace(cfg_a, seed=1)
        cfg_b = TraceConfig(
            n_machines=6,
            n_snapshots=15,
            dynamics=cfg_a.dynamics,
            tiers=BandTiers(
                same_rack_bandwidth=125e6 / 3, cross_rack_bandwidth=50e6 / 3
            ),
        )
        b = generate_trace(cfg_b, seed=1)
        return CalibrationTrace(
            alpha=np.concatenate([a.alpha, b.alpha]),
            beta=np.concatenate([a.beta, b.beta]),
            timestamps=np.arange(30, dtype=float) * 1800.0,
        )

    def test_detects_planted_change(self):
        trace = self._two_regime_trace()
        changes = detect_regime_changes(trace, window=5, threshold=0.25)
        assert len(changes) == 1
        assert abs(changes[0].snapshot - 15) <= 2
        assert changes[0].shift > 0.25

    def test_no_change_on_stationary_trace(self, calm_trace):
        assert detect_regime_changes(calm_trace, window=5, threshold=0.25) == []

    def test_one_snapshot_spike_not_flagged(self, calm_trace):
        # A single catastrophic snapshot is interference, not a regime change.
        alpha = calm_trace.alpha.copy()
        beta = calm_trace.beta.copy()
        beta[10] = beta[10] / 10.0
        n = calm_trace.n_machines
        np.fill_diagonal(beta[10], np.inf)
        spiked = CalibrationTrace(
            alpha=alpha, beta=beta, timestamps=calm_trace.timestamps.copy()
        )
        assert detect_regime_changes(spiked, window=5, threshold=0.25) == []

    def test_short_trace_returns_empty(self, tiny_trace):
        assert detect_regime_changes(tiny_trace, window=6) == []

    def test_window_validated(self, small_trace):
        with pytest.raises(Exception):
            detect_regime_changes(small_trace, window=1)
