"""Kill-and-recover chaos tests: SIGKILL a live session, resume, check parity.

Each case drives the real CLI in subprocesses via the chaos harness: an
uninterrupted reference replay, then a persisted replay that is SIGKILLed
mid-run and resumed to completion. Parity means the final constant
component, operation count, recalibration count, and communication time are
identical to the reference — the crash left no trace in the results.

Marked ``chaos`` so the (subprocess-heavy) cases can be selected or skipped
with ``-m chaos`` / ``-m "not chaos"``.
"""

import pytest

from repro.cloudsim.dynamics import DynamicsConfig
from repro.cloudsim.io import save_trace
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.errors import PersistenceError
from repro.persistence.chaos import kill_and_recover

pytestmark = pytest.mark.chaos


def _trace_file(tmp_path, seed):
    cfg = TraceConfig(
        n_machines=6,
        n_snapshots=30,
        dynamics=DynamicsConfig(volatility_sigma=0.05),
    )
    path = tmp_path / f"trace-{seed}.npz"
    save_trace(generate_trace(cfg, seed=seed), path)
    return str(path)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_single_kill_parity(tmp_path, seed):
    result = kill_and_recover(
        _trace_file(tmp_path, seed),
        tmp_path / "work",
        kill_at=(9,),
        operations=24,
        checkpoint_every=5,
    )
    assert result.kills == 1
    # The WAL record of the killed operation replays on recovery, so the
    # resumed child starts one past the kill point.
    assert result.recovered["recovered_at"] == 10
    assert result.parity, f"state diverged after recovery: {result.max_abs_diff}"
    assert result.max_abs_diff == 0.0


def test_repeated_kills_with_recalibrations(tmp_path):
    # A low threshold makes Algorithm 1 recalibrate repeatedly, so kills
    # land between warm-started re-solves — the hardest state to restore.
    result = kill_and_recover(
        _trace_file(tmp_path, 7),
        tmp_path / "work",
        kill_at=(6, 15),
        operations=24,
        threshold=0.2,
        checkpoint_every=5,
    )
    assert result.kills == 2
    assert result.parity
    assert result.reference["operations"] == 24


def test_kill_under_measurement_faults_and_regime(tmp_path):
    result = kill_and_recover(
        _trace_file(tmp_path, 13),
        tmp_path / "work",
        kill_at=(8,),
        operations=20,
        faults="probe_loss=0.05",
        fault_seed=0,
        regime=True,
        checkpoint_every=5,
    )
    assert result.parity
    assert result.max_abs_diff == 0.0


@pytest.mark.parametrize("detector", ["signature", "noise-robust", "drift"])
def test_kill_with_each_registered_detector(tmp_path, detector):
    # ``regime=True`` above covers the default CUSUM path; the drop-in
    # detectors must survive SIGKILL mid-warmup/mid-window just the same —
    # whatever internal buffers they keep restore bit-identically.
    result = kill_and_recover(
        _trace_file(tmp_path, 13),
        tmp_path / "work",
        kill_at=(8,),
        operations=20,
        regime=detector,
        checkpoint_every=5,
    )
    assert result.parity
    assert result.max_abs_diff == 0.0


class TestHarnessValidation:
    def test_kill_schedule_must_be_increasing(self, tmp_path):
        with pytest.raises(PersistenceError, match="strictly increasing"):
            kill_and_recover(
                _trace_file(tmp_path, 1),
                tmp_path / "work",
                kill_at=(9, 9),
                operations=24,
            )

    def test_kills_must_precede_completion(self, tmp_path):
        with pytest.raises(PersistenceError, match="before the operation target"):
            kill_and_recover(
                _trace_file(tmp_path, 1),
                tmp_path / "work",
                kill_at=(30,),
                operations=24,
            )
