"""Snapshot tests pinning the v1.1 public surface to ``docs/api_v1.md``.

The manifest is normative: these tests parse its fenced blocks and compare
them against the imported package, so any change to ``repro.__all__``, a
facade signature, a config dataclass's fields or the retired-spellings
table must be made in ``docs/api_v1.md`` in the same commit. A failure here means
"you changed the public API without updating the contract", not "update
the snapshot blindly" — read the diff it prints.
"""

from __future__ import annotations

import dataclasses
import inspect
import re
from pathlib import Path

import pytest

import repro
from repro import api

MANIFEST = Path(__file__).resolve().parent.parent / "docs" / "api_v1.md"


def _fenced_block(section: str) -> list[str]:
    """Lines of the first fenced code block under ``## <section>``."""
    text = MANIFEST.read_text(encoding="utf-8")
    pattern = rf"^## {re.escape(section)}\n+```text\n(.*?)^```"
    match = re.search(pattern, text, flags=re.MULTILINE | re.DOTALL)
    assert match is not None, f"manifest section {section!r} not found"
    return [line for line in match.group(1).splitlines() if line.strip()]


def _render_signature(fn) -> str:
    """``name(params)`` with annotations stripped and only plain defaults.

    Annotation-free so the manifest stays readable and the check does not
    churn when typing details (unions, quoting) are refactored — the wire
    contract is names, order, kinds and simple default values.
    """
    sig = inspect.signature(fn)
    params = []
    for p in sig.parameters.values():
        p = p.replace(annotation=inspect.Parameter.empty)
        if p.default is not inspect.Parameter.empty and not isinstance(
            p.default, (int, float, str, bool, type(None))
        ):
            p = p.replace(default="...")
        params.append(p)
    sig = sig.replace(parameters=params, return_annotation=inspect.Signature.empty)
    return f"{fn.__name__}{sig}"


def test_all_matches_manifest():
    documented = _fenced_block("Exported names (`repro.__all__`)")
    live = sorted(repro.__all__)
    assert live == documented, (
        "repro.__all__ diverged from docs/api_v1.md:\n"
        f"  only live:       {sorted(set(live) - set(documented))}\n"
        f"  only documented: {sorted(set(documented) - set(live))}"
    )


def test_all_names_importable_and_unique():
    assert len(repro.__all__) == len(set(repro.__all__))
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"


def test_facade_signatures_match_manifest():
    documented = _fenced_block("Facade signatures")
    live = sorted(
        _render_signature(getattr(api, name))
        for name in ("solve", "open_session", "run_fleet", "sweep_fleet")
    )
    assert live == sorted(documented)


def test_config_fields_match_manifest():
    documented = {}
    for line in _fenced_block("Configuration fields"):
        name, _, fields_csv = line.partition(":")
        documented[name.strip()] = [f.strip() for f in fields_csv.split(",")]
    live = {
        cls.__name__: [f.name for f in dataclasses.fields(cls)]
        for cls in (api.SolveConfig, api.SessionConfig, repro.FleetConfig)
    }
    assert live == documented


def test_retired_spellings_match_manifest():
    documented = {}
    for line in _fenced_block("Removed keyword spellings (v1.1)"):
        legacy, _, canonical = line.partition("->")
        documented[legacy.strip()] = canonical.strip()
    assert api._RETIRED_SPELLINGS == documented


@pytest.mark.parametrize("legacy,canonical", sorted(api._RETIRED_SPELLINGS.items()))
def test_retired_spellings_raise_typeerror(legacy, canonical, tiny_trace):
    """Every documented retired spelling is a hard error naming the field."""
    targets = {
        "window": ("open_session", 6),
        "threshold": ("open_session", 1.5),
        "n_workers": ("run_fleet", 1),
    }
    verb, value = targets[canonical]
    with pytest.raises(TypeError, match=rf"{legacy}.*removed in API v1\.1"):
        if verb == "open_session":
            api.open_session(tiny_trace, **{legacy: value})
        else:
            api.run_fleet([("only", tiny_trace)], serial=True, **{legacy: value})


def test_retired_spelling_error_names_the_canonical_field(tiny_trace):
    with pytest.raises(TypeError, match=r"use 'window' for SessionConfig"):
        api.open_session(tiny_trace, time_step=6)
    with pytest.raises(TypeError, match=r"use 'n_workers' for FleetConfig"):
        api.run_fleet([("only", tiny_trace)], serial=True, workers=2)


def test_unknown_keyword_gets_did_you_mean_hint(tiny_trace):
    with pytest.raises(TypeError, match=r"did you mean 'window'\?"):
        api.open_session(tiny_trace, windoww=6)
    # No near-miss: still a TypeError, just without a hint.
    with pytest.raises(TypeError, match=r"unexpected keyword 'zzz'"):
        api.solve(tiny_trace, zzz=1)


def test_no_deprecation_shims_remain_in_src():
    """v1.1 acceptance: the facade has no warning-based compatibility path."""
    src = Path(api.__file__).read_text(encoding="utf-8")
    assert "DeprecationWarning" not in src
    assert "warnings" not in src


def test_facade_configs_are_frozen():
    cfg = api.SessionConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        cfg.window = 3
