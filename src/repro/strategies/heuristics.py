"""Heuristics: direct use of a few network measurements (paper Sec V-A).

The paper's "Heuristics" arm averages each TP-matrix column — i.e. treats
every link independently and takes the mean of its measurements as the
long-term estimate. The paper notes minimal-value and exponentially-weighted
averages "obtain similar results"; all three are provided here for the
ablation bench. The essential contrast with RPCA is that these estimators
look at links in isolation, while RPCA exploits the joint low-rank structure
across all links.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_in_range
from ..core.matrices import TPMatrix
from ..errors import ValidationError
from .base import Strategy

__all__ = ["HeuristicStrategy"]

_KINDS = ("mean", "min", "ewma", "percentile")


class HeuristicStrategy(Strategy):
    """Per-link aggregation of raw measurements.

    Parameters
    ----------
    kind:
        ``"mean"`` (paper default), ``"min"`` (best observed — optimistic),
        ``"ewma"`` (exponentially weighted toward recent snapshots) or
        ``"percentile"`` (a distribution-based estimate — the approach the
        paper dismisses because "excessive measurements are required" for
        the per-link distribution to stabilize).
    ewma_alpha:
        Smoothing factor for ``"ewma"`` in (0, 1]; the weight of the most
        recent snapshot.
    percentile:
        Which per-link percentile ``"percentile"`` estimates (default 75 —
        a pessimistic planner hedging against interference).
    """

    tree_algorithm = "fnf"
    mapping_algorithm = "greedy"

    def __init__(
        self,
        kind: str = "mean",
        *,
        ewma_alpha: float = 0.3,
        percentile: float = 75.0,
    ) -> None:
        if kind not in _KINDS:
            raise ValidationError(f"kind must be one of {_KINDS}, got {kind!r}")
        self.kind = kind
        self.ewma_alpha = check_in_range(ewma_alpha, 1e-9, 1.0, "ewma_alpha")
        self.percentile = check_in_range(percentile, 0.0, 100.0, "percentile")
        self.name = "Heuristics" if kind == "mean" else f"Heuristics-{kind}"
        self._weights: np.ndarray | None = None

    def fit(self, tp: TPMatrix) -> None:
        data = tp.data
        if self.kind == "mean":
            row = data.mean(axis=0)
        elif self.kind == "min":
            # The off-diagonal minimum; diagonal zeros stay zero.
            row = data.min(axis=0)
        elif self.kind == "percentile":
            row = np.percentile(data, self.percentile, axis=0)
        else:  # ewma, oldest-to-newest
            row = data[0].astype(np.float64).copy()
            a = self.ewma_alpha
            for k in range(1, data.shape[0]):
                row = (1.0 - a) * row + a * data[k]
        n = tp.n_machines
        w = row.reshape(n, n).copy()
        np.fill_diagonal(w, 0.0)
        self._weights = w

    def weight_matrix(self) -> np.ndarray | None:
        if self._weights is None:
            raise ValidationError("HeuristicStrategy.fit() has not been called")
        return self._weights.copy()
