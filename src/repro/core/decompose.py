"""High-level TP-matrix decomposition (paper Fig 2 / Algorithm 1 lines 1–2).

:func:`decompose` turns a :class:`~repro.core.matrices.TPMatrix` into a
:class:`Decomposition`: the rank-one :class:`~repro.core.matrices.TCMatrix`
(constant component), the :class:`~repro.core.matrices.TEMatrix` (error
component) and a :class:`~repro.core.metrics.StabilityReport`.

A generic RPCA solver returns a low-rank ``D`` that is *near* rank one on
network data but not exactly row-constant; :func:`constant_row` collapses it
to the single row the optimizers need. Two extraction rules are provided for
the ablation in DESIGN.md Sec 5: the column mean of ``D`` (default — the
least-squares row-constant fit to ``D``) and the dominant singular vector
scaled to preserve the mean row level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import ValidationError
from .matrices import PerformanceMatrix, TCMatrix, TEMatrix, TPMatrix
from .metrics import StabilityReport, stability_report
from .result import SolverResult
from .solvers import solve_rpca, solver_spec
from .svd_ops import truncated_svd

__all__ = [
    "Decomposition",
    "decompose",
    "decomposition_from_result",
    "constant_row",
]


def constant_row(low_rank: np.ndarray, *, method: str = "mean") -> np.ndarray:
    """Collapse a near-rank-one matrix to its representative row.

    Parameters
    ----------
    low_rank:
        The ``D`` matrix from an RPCA solver (rows ≈ equal).
    method:
        ``"mean"`` — column means, i.e. the least-squares projection of ``D``
        onto the row-constant subspace (default). ``"median"`` — column
        medians; robust when whole snapshot rows survive in ``D`` (a scaled
        copy of the constant row is itself low-rank, so RPCA's sparse term
        cannot absorb snapshot-level storms — the median extraction can).
        ``"top_sv"`` — the leading right singular vector of ``D`` scaled so
        its projection matches the mean row.
    """
    d = np.asarray(low_rank, dtype=np.float64)
    if d.ndim != 2 or d.size == 0:
        raise ValidationError("low_rank must be a non-empty 2-D array")
    if method == "mean":
        return d.mean(axis=0)
    if method == "median":
        return np.median(d, axis=0)
    if method == "top_sv":
        _, s, vt = truncated_svd(d)
        if s.size == 0 or s[0] == 0.0:
            return np.zeros(d.shape[1])
        v = vt[0]
        mean_row = d.mean(axis=0)
        scale = float(mean_row @ v)  # project mean row onto the direction
        return scale * v
    raise ValidationError(f"unknown extraction method {method!r}")


@dataclass(frozen=True)
class Decomposition:
    """Result of :func:`decompose`: ``N_A ≈ N_D + N_E`` plus diagnostics.

    ``solver_result`` keeps the raw :class:`~repro.core.result.SolverResult`
    so a later overlapping re-calibration can warm-start from this solve
    (see :class:`~repro.core.engine.DecompositionEngine`).
    """

    constant: TCMatrix
    error: TEMatrix
    report: StabilityReport
    solver: str
    solver_iterations: int
    solver_converged: bool
    solver_result: SolverResult | None = None

    @property
    def norm_ne(self) -> float:
        """Shorthand for the L1 relative error norm ``Norm(N_E)``."""
        return self.report.norm_ne

    def performance_matrix(self) -> PerformanceMatrix:
        """The optimizer-ready constant weight matrix ``P_D``."""
        return self.constant.performance_matrix()


def decompose(
    tp: TPMatrix,
    *,
    solver: str = "apg",
    extraction: str = "mean",
    svd_backend: str | None = None,
    elementwise_backend: str | None = None,
    **solver_kwargs: Any,
) -> Decomposition:
    """Decompose a TP-matrix into constant + error components.

    Parameters
    ----------
    tp:
        The calibrated temporal performance matrix ``N_A``. When it carries
        an observation mask (partial snapshot), the mask is forwarded to the
        solver — which must support masked decomposition (APG/IALM do) —
        and unobserved entries are excluded from the error component and
        the stability report.
    solver:
        RPCA backend name (see :func:`~repro.core.solvers.available_solvers`).
    extraction:
        Constant-row extraction rule (see :func:`constant_row`). Ignored for
        the ``row_constant`` solver, whose output is exactly row-constant.
    svd_backend:
        SVD kernel for the per-iteration thresholding — one of
        :data:`repro.core.kernels.SVD_BACKENDS`. Only meaningful for solvers
        built on singular value thresholding (APG/IALM); ``None`` (default)
        leaves the solver on its own default (``"exact"``).
    elementwise_backend:
        Elementwise kernel for the solver's step recurrences — one of
        :data:`repro.core.elementwise.EW_BACKENDS`. Only meaningful for
        APG/IALM, and anything but ``"reference"`` additionally requires a
        non-``exact`` *svd_backend*; ``None`` (default) leaves the solver
        on its own default (``"reference"``).
    **solver_kwargs:
        Forwarded to the solver.
    """
    if svd_backend is not None:
        spec = solver_spec(solver)
        if not spec.accepts_any_kwargs and "svd_backend" not in spec.accepted_kwargs:
            raise ValidationError(
                f"solver {solver!r} does not take an SVD backend; "
                "only SVT-based solvers such as 'apg' or 'ialm' do"
            )
        solver_kwargs = dict(solver_kwargs, svd_backend=svd_backend)
    if elementwise_backend is not None:
        spec = solver_spec(solver)
        if not spec.accepts_any_kwargs and (
            "elementwise_backend" not in spec.accepted_kwargs
        ):
            raise ValidationError(
                f"solver {solver!r} does not take an elementwise backend; "
                "only SVT-based solvers such as 'apg' or 'ialm' do"
            )
        solver_kwargs = dict(solver_kwargs, elementwise_backend=elementwise_backend)
    if tp.mask is not None:
        spec = solver_spec(solver)
        if not spec.accepts_any_kwargs and "mask" not in spec.accepted_kwargs:
            raise ValidationError(
                f"solver {solver!r} cannot decompose a partially-observed "
                f"TP-matrix ({tp.observed_fraction:.1%} observed); use a "
                "mask-aware solver such as 'apg' or 'ialm'"
            )
        solver_kwargs = dict(solver_kwargs, mask=tp.mask)
    result = solve_rpca(tp.data, solver=solver, **solver_kwargs)
    return decomposition_from_result(tp, result, solver=solver, extraction=extraction)


def decomposition_from_result(
    tp: TPMatrix,
    result: SolverResult,
    *,
    solver: str,
    extraction: str = "mean",
) -> Decomposition:
    """Build a :class:`Decomposition` from an already-computed solver result.

    The post-solve tail of :func:`decompose` — row extraction, error
    component, stability report — shared with the batched entry points
    (:meth:`~repro.core.engine.BatchDecompositionEngine.decompose_batch`),
    which obtain their :class:`~repro.core.result.SolverResult` per slice
    from one stacked solve instead of :func:`~repro.core.solvers.solve_rpca`.
    """
    if getattr(result, "constant_row", None) is not None:
        # Exact row-constant solvers (row_constant, pca) carry their row.
        row = result.constant_row
    else:
        row = constant_row(result.low_rank, method=extraction)
    tc = TCMatrix(row=row, n_rows=tp.n_snapshots, n_machines=tp.n_machines)
    # Define the error against the row-constant component actually used for
    # optimization (not the solver's possibly rank>1 D): the effectiveness
    # metric must reflect what the optimizer sees. An unobserved entry has
    # no measured error — for the report it is treated as if it sat exactly
    # on the constant component (zero numerator, constant-level denominator).
    data = tp.data
    if tp.mask is not None:
        data = np.where(tp.mask, data, tc.as_matrix())
    err = data - tc.as_matrix()
    te = TEMatrix(data=err, n_machines=tp.n_machines)
    report = stability_report(err, data, rank=result.rank)
    return Decomposition(
        constant=tc,
        error=te,
        report=report,
        solver=solver,
        solver_iterations=result.iterations,
        solver_converged=result.converged,
        solver_result=result if isinstance(result, SolverResult) else None,
    )
