"""Serializing full session state to checkpoint arrays + metadata.

The split follows the checkpoint container's two channels: everything
array-shaped (TP-window row cache, warm-start components, the decomposition
in service, the deviation history) goes into the numpy payload; everything
scalar or structured (config, cursor, counters, health machine, detector
state) goes into the JSON metadata. ``STATE_SCHEMA_VERSION`` guards the
layout — recovery refuses a checkpoint written by an incompatible schema
rather than misinterpreting its arrays.

The capture functions take the session duck-typed (this module must not
import :mod:`repro.runtime.session`, which imports it back); restoration of
the session object itself lives in
:meth:`~repro.runtime.session.TraceSession.resume`, which calls the
``*_from_state`` helpers here.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict
from typing import Any

import numpy as np

from ..cloudsim.trace import CalibrationTrace
from ..core.decompose import Decomposition
from ..core.matrices import TCMatrix, TEMatrix
from ..core.metrics import StabilityReport
from ..core.result import SolverResult
from ..core.streaming import stream_state_to_payload
from ..errors import CheckpointCorruption

__all__ = [
    "STATE_SCHEMA_VERSION",
    "trace_sha256",
    "trace_to_arrays",
    "trace_from_arrays",
    "capture_session_state",
    "history_rows_from_state",
    "decomposition_from_state",
    "engine_cache_from_state",
    "check_schema",
]

STATE_SCHEMA_VERSION = 1


# -- trace identity and round-trip ----------------------------------------
def trace_sha256(trace: CalibrationTrace) -> str:
    """Content hash of a trace (values + mask), for recovery validation."""
    h = hashlib.sha256()
    for arr in (trace.alpha, trace.beta, trace.timestamps):
        h.update(np.ascontiguousarray(arr).tobytes())
    if trace.mask is not None:
        h.update(np.ascontiguousarray(trace.mask).tobytes())
    return h.hexdigest()


def trace_to_arrays(
    trace: CalibrationTrace, *, prefix: str = "trace_"
) -> dict[str, np.ndarray]:
    """A trace as checkpoint-ready arrays (inverse: :func:`trace_from_arrays`)."""
    arrays = {
        f"{prefix}alpha": trace.alpha,
        f"{prefix}beta": trace.beta,
        f"{prefix}timestamps": trace.timestamps,
    }
    if trace.mask is not None:
        arrays[f"{prefix}mask"] = trace.mask
    return arrays


def trace_from_arrays(
    arrays: dict[str, np.ndarray], *, prefix: str = "trace_"
) -> CalibrationTrace:
    """Rebuild a trace from :func:`trace_to_arrays` output."""
    return CalibrationTrace(
        alpha=arrays[f"{prefix}alpha"],
        beta=arrays[f"{prefix}beta"],
        timestamps=arrays[f"{prefix}timestamps"],
        mask=arrays.get(f"{prefix}mask"),
    )


# -- decomposition ---------------------------------------------------------
def _decomposition_to_state(
    dec: Decomposition, arrays: dict[str, np.ndarray]
) -> dict[str, Any]:
    arrays["dec_row"] = dec.constant.row
    arrays["dec_error"] = dec.error.data
    sr = dec.solver_result
    meta: dict[str, Any] = {
        "solver": dec.solver,
        "iterations": dec.solver_iterations,
        "converged": bool(dec.solver_converged),
        "n_rows": dec.constant.n_rows,
        "n_machines": dec.constant.n_machines,
        "report": {
            "norm_ne": dec.report.norm_ne,
            "norm_ne_l0": dec.report.norm_ne_l0,
            "rank": dec.report.rank,
            "verdict": dec.report.verdict,
        },
        "solver_result": None,
    }
    if sr is not None:
        arrays["sr_low_rank"] = sr.low_rank
        arrays["sr_sparse"] = sr.sparse
        if sr.constant_row is not None:
            arrays["sr_constant_row"] = sr.constant_row
        meta["solver_result"] = {
            "rank": sr.rank,
            "iterations": sr.iterations,
            "converged": bool(sr.converged),
            "residual": sr.residual,
            "warm_started": bool(sr.warm_started),
            "has_constant_row": sr.constant_row is not None,
        }
    return meta


def decomposition_from_state(
    arrays: dict[str, np.ndarray], meta: dict[str, Any]
) -> Decomposition:
    """Re-materialize the decomposition in service from checkpoint state."""
    solver_result = None
    sr_meta = meta.get("solver_result")
    if sr_meta is not None:
        solver_result = SolverResult(
            low_rank=arrays["sr_low_rank"],
            sparse=arrays["sr_sparse"],
            rank=int(sr_meta["rank"]),
            iterations=int(sr_meta["iterations"]),
            converged=bool(sr_meta["converged"]),
            residual=float(sr_meta["residual"]),
            constant_row=(
                arrays["sr_constant_row"] if sr_meta["has_constant_row"] else None
            ),
            warm_started=bool(sr_meta["warm_started"]),
        )
    report = StabilityReport(
        norm_ne=float(meta["report"]["norm_ne"]),
        norm_ne_l0=float(meta["report"]["norm_ne_l0"]),
        rank=int(meta["report"]["rank"]),
        verdict=str(meta["report"]["verdict"]),
    )
    return Decomposition(
        constant=TCMatrix(
            row=arrays["dec_row"],
            n_rows=int(meta["n_rows"]),
            n_machines=int(meta["n_machines"]),
        ),
        error=TEMatrix(data=arrays["dec_error"], n_machines=int(meta["n_machines"])),
        report=report,
        solver=str(meta["solver"]),
        solver_iterations=int(meta["iterations"]),
        solver_converged=bool(meta["converged"]),
        solver_result=solver_result,
    )


# -- engine row cache ------------------------------------------------------
def _engine_cache_to_arrays(
    cache: dict[int, tuple[np.ndarray, np.ndarray | None]],
    arrays: dict[str, np.ndarray],
) -> None:
    if not cache:
        return
    keys = np.array(list(cache.keys()), dtype=np.int64)
    rows = np.stack([row for row, _ in cache.values()])
    has_mask = np.array([m is not None for _, m in cache.values()], dtype=bool)
    arrays["cache_keys"] = keys
    arrays["cache_rows"] = rows
    arrays["cache_has_mask"] = has_mask
    if has_mask.any():
        full = np.ones(rows.shape[1], dtype=bool)
        arrays["cache_masks"] = np.stack(
            [full if m is None else m for _, m in cache.values()]
        )


def engine_cache_from_state(
    arrays: dict[str, np.ndarray],
) -> dict[int, tuple[np.ndarray, np.ndarray | None]]:
    """Rebuild the engine's row cache (LRU order preserved by key order)."""
    if "cache_keys" not in arrays:
        return {}
    keys = arrays["cache_keys"]
    rows = arrays["cache_rows"]
    has_mask = arrays["cache_has_mask"]
    masks = arrays.get("cache_masks")
    cache: dict[int, tuple[np.ndarray, np.ndarray | None]] = {}
    for i, k in enumerate(keys):
        mask_row = masks[i] if (masks is not None and has_mask[i]) else None
        cache[int(k)] = (rows[i], mask_row)
    return cache


# -- operation history -----------------------------------------------------
# One record per operation for the session's whole lifetime, so the JSON
# channel must not carry it: numeric fields go to arrays, categorical
# strings become int32 codes plus a small legend in the metadata. This
# keeps checkpoint cost flat as the session ages.
_HISTORY_CATEGORICALS = ("op", "decision", "health", "regime")


def _history_to_state(
    history: list[Any], arrays: dict[str, np.ndarray]
) -> dict[str, list[Any]]:
    n = len(history)
    arrays["hist_snapshot"] = np.fromiter(
        (r.snapshot for r in history), np.int64, count=n
    )
    arrays["hist_root"] = np.fromiter((r.root for r in history), np.int64, count=n)
    arrays["hist_elapsed"] = np.fromiter(
        (r.elapsed for r in history), np.float64, count=n
    )
    arrays["hist_expected"] = np.fromiter(
        (r.expected for r in history), np.float64, count=n
    )
    legends: dict[str, list[Any]] = {}
    for field in _HISTORY_CATEGORICALS:
        codes = np.empty(n, dtype=np.int32)
        legend: list[Any] = []
        index: dict[Any, int] = {}
        for i, record in enumerate(history):
            value = getattr(record, field)
            if field == "decision":
                value = value.value
            code = index.get(value)
            if code is None:
                code = index[value] = len(legend)
                legend.append(value)
            codes[i] = code
        arrays[f"hist_{field}"] = codes
        legends[field] = legend
    return legends


def history_rows_from_state(
    arrays: dict[str, np.ndarray], legends: dict[str, list[Any]]
) -> list[dict[str, Any]]:
    """History as plain row dicts (the session rebuilds its own records)."""
    rows = []
    for i in range(arrays["hist_snapshot"].shape[0]):
        row: dict[str, Any] = {
            "snapshot": int(arrays["hist_snapshot"][i]),
            "root": int(arrays["hist_root"][i]),
            "elapsed": float(arrays["hist_elapsed"][i]),
            "expected": float(arrays["hist_expected"][i]),
        }
        for field in _HISTORY_CATEGORICALS:
            row[field] = legends[field][int(arrays[f"hist_{field}"][i])]
        rows.append(row)
    return rows


# -- full session state ----------------------------------------------------
def capture_session_state(
    session: Any,
) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Everything a :class:`~repro.runtime.session.TraceSession` needs to resume.

    Returns ``(arrays, meta)`` ready for
    :func:`~repro.persistence.checkpoint.write_checkpoint`.
    """
    arrays: dict[str, np.ndarray] = {}
    stats = session.stats
    resilience = session.resilience
    persistence = session.persistence
    meta: dict[str, Any] = {
        "schema": STATE_SCHEMA_VERSION,
        "config": {
            "nbytes": session.nbytes,
            "time_step": session.time_step,
            "threshold": session.controller.threshold,
            "consecutive": session.controller.consecutive,
            "solver": session.solver,
            "calibration_cost": session.calibration_cost,
            "warm_start": session._engine.warm_start,
            "svd_backend": session._engine.svd_backend,
            "elementwise_backend": session._engine.elementwise_backend,
            "mode": session.mode,
            # Knobs only exist in streaming mode (the engine rejects them
            # otherwise); None keeps batch checkpoints byte-compatible.
            "stream_tolerance": (
                session._engine.stream_config.tolerance
                if session.mode == "streaming"
                else None
            ),
            "stream_refresh_every": (
                session._engine.stream_config.refresh_every
                if session.mode == "streaming"
                else None
            ),
            "faults_spec": session.faults_spec,
            "fault_seed": session.fault_seed,
            "resilience": None if resilience is None else asdict(resilience),
            "regime": (
                None
                if session.regime_detector is None
                else {
                    "name": session.regime_detector.name,
                    "params": session.regime_detector.params(),
                }
            ),
        },
        "trace": {
            # The trace is immutable for the session's lifetime; hashing its
            # ~MBs once (cached by the session) keeps checkpoints cheap.
            "sha256": (
                getattr(session, "_trace_sha", None) or trace_sha256(session.trace)
            ),
            "n_machines": session.trace.n_machines,
            "n_snapshots": session.trace.n_snapshots,
            "path": None if persistence is None else persistence.trace_path,
        },
        "cursor": session._cursor,
        "journal_seq": stats.operations,
        "stats": {
            "operations": stats.operations,
            "communication_seconds": stats.communication_seconds,
            "overhead_seconds": stats.overhead_seconds,
            "recalibrations": stats.recalibrations,
            "failed_recalibrations": stats.failed_recalibrations,
            "deferred_recalibrations": stats.deferred_recalibrations,
            "holdover_operations": stats.holdover_operations,
            "epochs": stats.epochs,
            "regime_shifts": stats.regime_shifts,
            "regime_spikes": stats.regime_spikes,
            "stream_updates": stats.stream_updates,
            "stream_fallbacks": stats.stream_fallbacks,
            "history_legends": _history_to_state(stats.history, arrays),
        },
        "controller": session.controller.state_dict(),
        "health": None if session.health is None else session.health.state_dict(),
        "regime_state": (
            None
            if session.regime_detector is None
            else session.regime_detector.state_dict()
        ),
        "instrumentation": session.instrumentation.state_dict(),
        "decomposition": _decomposition_to_state(session.decomposition, arrays),
        "stream": None,
    }
    # Streaming subspace state rides the (bit-exact) array channel so a
    # resumed session's folds are bit-identical to the captured one's.
    stream_state = session._engine.export_stream_state()
    if stream_state is not None:
        stream_arrays, stream_meta = stream_state_to_payload(stream_state)
        arrays.update(stream_arrays)
        meta["stream"] = stream_meta
    # The controller's deviation history can be long — keep it in the array
    # channel rather than bloating the JSON member.
    deviations = meta["controller"].pop("deviations")
    arrays["ctrl_deviations"] = np.asarray(deviations, dtype=np.float64)
    _engine_cache_to_arrays(session._engine.export_cache(), arrays)
    return arrays, meta


def check_schema(meta: dict[str, Any], path: str) -> None:
    """Refuse checkpoints written by an incompatible state schema."""
    schema = meta.get("schema")
    if schema != STATE_SCHEMA_VERSION:
        raise CheckpointCorruption(
            f"{path}: unsupported session-state schema {schema!r} "
            f"(expected {STATE_SCHEMA_VERSION})"
        )
