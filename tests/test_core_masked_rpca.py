"""Masked (partial-observation) RPCA and its plumbing through the stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.core.apg import rpca_apg, validate_mask
from repro.core.decompose import decompose
from repro.core.engine import DecompositionEngine
from repro.core.ialm import rpca_ialm
from repro.core.matrices import TPMatrix
from repro.errors import CalibrationError, ConvergenceError, ValidationError
from repro.faults import ProbeLoss, VMOutage, inject_faults

MB = 1024 * 1024


def _masked_tp(trace, nbytes=8 * MB, loss=0.1, seed=0, **inject_kw):
    inj = inject_faults(trace, [ProbeLoss(loss)], seed=seed, **inject_kw)
    return trace.tp_matrix(nbytes), inj.trace.tp_matrix(nbytes)


class TestValidateMask:
    def test_none_and_all_true_normalize_to_none(self):
        assert validate_mask(None, (3, 4)) is None
        assert validate_mask(np.ones((3, 4), dtype=bool), (3, 4)) is None

    def test_wrong_dtype_rejected(self):
        with pytest.raises(ValidationError):
            validate_mask(np.ones((3, 4)), (3, 4))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValidationError):
            validate_mask(np.ones((2, 4), dtype=bool), (3, 4))

    def test_all_false_rejected(self):
        with pytest.raises(ValidationError):
            validate_mask(np.zeros((3, 4), dtype=bool), (3, 4))


class TestTPMatrixMask:
    def test_all_true_mask_normalized_away(self, tiny_trace):
        tp = tiny_trace.tp_matrix(8 * MB)
        masked = TPMatrix(
            data=tp.data,
            n_machines=tp.n_machines,
            timestamps=tp.timestamps,
            mask=np.ones_like(tp.data, dtype=bool),
        )
        assert masked.mask is None
        assert masked.observed_fraction == 1.0

    def test_observed_fraction_counts_off_diagonal_only(self, tiny_trace):
        full, masked = _masked_tp(tiny_trace, loss=0.2, seed=1)
        assert masked.mask is not None
        n = masked.n_machines
        off = ~np.eye(n, dtype=bool).ravel()
        expect = masked.mask[:, off].mean()
        assert masked.observed_fraction == pytest.approx(expect)
        fracs = masked.row_observed_fractions()
        assert fracs.shape == (masked.n_snapshots,)
        assert np.mean(fracs) == pytest.approx(masked.observed_fraction)

    def test_head_slices_mask(self, tiny_trace):
        _, masked = _masked_tp(tiny_trace, loss=0.2, seed=1)
        head = masked.head(3)
        assert head.mask is not None
        assert np.array_equal(head.mask, masked.mask[:3])


class TestMaskedSolvers:
    @pytest.mark.parametrize("solver_fn", [rpca_apg, rpca_ialm])
    def test_all_true_mask_is_bitwise_identical_to_unmasked(
        self, tiny_trace, solver_fn
    ):
        tp = tiny_trace.tp_matrix(8 * MB)
        plain = solver_fn(tp.data)
        masked = solver_fn(tp.data, mask=np.ones_like(tp.data, dtype=bool))
        assert np.array_equal(plain.low_rank, masked.low_rank)
        assert np.array_equal(plain.sparse, masked.sparse)
        assert plain.iterations == masked.iterations

    @pytest.mark.parametrize("solver", ["apg", "ialm"])
    @pytest.mark.parametrize("loss", [0.1, 0.2])
    def test_masked_constant_row_within_5pct_of_full(self, solver, loss):
        # Acceptance criterion: with <= 20% of entries missing, the masked
        # decomposition recovers P_D within 5% of the full decomposition.
        trace = generate_trace(TraceConfig(n_machines=12, n_snapshots=12), seed=21)
        full, masked = _masked_tp(trace, loss=loss, seed=2)
        assert masked.observed_fraction >= 1.0 - loss - 0.05
        ref = decompose(full, solver=solver).constant.row
        got = decompose(masked, solver=solver).constant.row
        rel = np.abs(got - ref).sum() / np.abs(ref).sum()
        assert rel < 0.05

    @pytest.mark.parametrize("solver_fn", [rpca_apg, rpca_ialm])
    def test_sparse_term_supported_on_observed_set(self, tiny_trace, solver_fn):
        _, masked = _masked_tp(tiny_trace, loss=0.2, seed=3)
        res = solver_fn(masked.data, mask=masked.mask)
        assert np.all(res.sparse[~masked.mask] == 0.0)

    @pytest.mark.parametrize("solver_fn", [rpca_apg, rpca_ialm])
    def test_convergence_error_on_exhausted_budget(self, tiny_trace, solver_fn):
        _, masked = _masked_tp(tiny_trace, loss=0.15, seed=4)
        with pytest.raises(ConvergenceError) as exc:
            solver_fn(
                masked.data, mask=masked.mask,
                max_iter=1, tol=1e-12, raise_on_fail=True,
            )
        assert exc.value.iterations == 1
        assert exc.value.residual > 0


class TestMaskedDecompose:
    def test_mask_unaware_solver_rejected(self, tiny_trace):
        _, masked = _masked_tp(tiny_trace, loss=0.1, seed=5)
        with pytest.raises(ValidationError, match="mask-aware"):
            decompose(masked, solver="row_constant")

    def test_report_treats_holes_as_on_constant(self, tiny_trace):
        _, masked = _masked_tp(tiny_trace, loss=0.2, seed=5)
        dec = decompose(masked, solver="apg")
        err = dec.error.data
        assert np.all(err[~masked.mask] == 0.0)

    def test_unmasked_decompose_unchanged(self, tiny_trace):
        # The masked machinery must not touch the fully-observed path.
        tp = tiny_trace.tp_matrix(8 * MB)
        a = decompose(tp, solver="apg")
        b = decompose(tp, solver="apg")
        assert np.array_equal(a.constant.row, b.constant.row)


class TestEngineMaskedWindows:
    def test_windows_carry_trace_mask(self, small_trace):
        inj = inject_faults(small_trace, [ProbeLoss(0.1)], seed=6)
        eng = DecompositionEngine(inj.trace, nbytes=8 * MB, time_step=10)
        tp = eng.window(0, 10)
        assert tp.mask is not None
        expect = inj.trace.mask[:10].reshape(10, -1)
        assert np.array_equal(tp.mask, expect)
        assert eng.instrumentation.counters.get("engine.window.masked_rows", 0) > 0
        dec = eng.solve(tp)
        assert eng.instrumentation.counters.get("engine.solve.masked") == 1
        assert dec.solver_converged

    def test_snapshot_threshold_rejects_dark_window(self, small_trace):
        inj = inject_faults(
            small_trace, [VMOutage(machine=2, start=3, duration=2)], seed=6
        )
        eng = DecompositionEngine(
            inj.trace, nbytes=8 * MB, time_step=10, min_snapshot_observed=0.9
        )
        with pytest.raises(CalibrationError, match="snapshot 3"):
            eng.window(0, 10)
        assert eng.instrumentation.counters["engine.window.rejected"] == 1
        # windows avoiding the outage pass
        assert eng.window(5, 10).n_snapshots == 5

    def test_window_threshold_rejects_sparse_window(self, small_trace):
        inj = inject_faults(small_trace, [ProbeLoss(0.3)], seed=7)
        eng = DecompositionEngine(
            inj.trace, nbytes=8 * MB, time_step=10, min_window_observed=0.95
        )
        with pytest.raises(CalibrationError, match="window"):
            eng.window(0, 10)

    def test_empty_window_rejected(self, small_trace):
        eng = DecompositionEngine(small_trace, nbytes=8 * MB, time_step=10)
        with pytest.raises(ValidationError):
            eng.window(5, 5)

    def test_cold_full_observation_path_is_bitwise_stable(self, small_trace):
        # warm_start=False over a fully-observed trace must equal the direct
        # decompose of trace.tp_matrix — the historical cold path.
        eng = DecompositionEngine(
            small_trace, nbytes=8 * MB, time_step=10, warm_start=False
        )
        for end in (10, 12, 15):
            via_engine = eng.calibrate(end)
            direct = decompose(
                small_trace.tp_matrix(8 * MB, start=end - 10, count=10),
                solver="apg",
            )
            assert np.array_equal(via_engine.constant.row, direct.constant.row)
            assert np.array_equal(via_engine.error.data, direct.error.data)
