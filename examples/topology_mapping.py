#!/usr/bin/env python3
"""Topology mapping on a virtual cluster (paper Sec II-C + Fig 7).

Maps task graphs (random, ring, 2-D stencil) onto an EC2-like virtual
cluster with the greedy heuristic of Hoefler & Snir, guided by three
estimates of the machine graph: none (ring mapping baseline), the raw mean
of measurements, and the RPCA constant component.

Run:  python examples/topology_mapping.py
"""

from __future__ import annotations

from repro import BaselineStrategy, HeuristicStrategy, RPCAStrategy, TraceConfig, generate_trace
from repro.experiments.harness import ReplayContext, mapping_comparison
from repro.experiments.report import format_table
from repro.mapping.taskgraph import random_task_graph, ring_task_graph, stencil_task_graph

MB = 1024 * 1024


def main() -> None:
    n = 16
    trace = generate_trace(TraceConfig(n_machines=n, n_snapshots=26), seed=77)
    ctx = ReplayContext(trace=trace, time_step=10, nbytes=8 * MB)

    workloads = {
        "random (5-10MB edges)": [random_task_graph(n, seed=s) for s in range(12)],
        "ring": [ring_task_graph(n, volume_bytes=8 * MB)] * 6,
        "4x4 stencil": [stencil_task_graph(4, 4, volume_bytes=8 * MB)] * 6,
    }

    rows = []
    for label, graphs in workloads.items():
        arms = [
            BaselineStrategy(),
            HeuristicStrategy("mean"),
            RPCAStrategy("apg", time_step=10),
        ]
        res = mapping_comparison(ctx, arms, graphs, seed=5)
        norm = res.normalized_means()
        rows.append(
            (label, norm["Baseline"], norm["Heuristics"], norm["RPCA"],
             f"{res.improvement('RPCA', 'Baseline'):+.1%}")
        )

    print(
        format_table(
            ["task graph", "Baseline", "Heuristics", "RPCA", "RPCA vs Baseline"],
            rows,
            title=(
                "Mapping communication time, normalized to Baseline (ring "
                "mapping); paper reports 8-20% gains over direct measurement"
            ),
        )
    )


if __name__ == "__main__":
    main()
