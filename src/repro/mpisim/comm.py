"""The simulated communicator.

Semantics follow MPI's single-program model, but the object is *global*: a
``SimComm`` holds every rank's data at once and executes collectives as
whole-cluster operations (the usual approach for simulation — per-rank
processes would simulate the network no better and cost real parallelism).

Data movement is real (results are exactly MPI's), and every operation
advances the simulated clock by its α-β cost on the current live network:

* ``bcast``/``reduce`` move full payloads along the communication tree;
* ``scatter``/``gather``/``allgather``/``alltoall`` move per-rank blocks;
* ``send``/``recv`` price a single link.

Payload sizes are taken from numpy array nbytes (or ``sys.getsizeof`` for
other objects — a simulation-grade approximation, documented here).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from .._validation import check_index
from ..collectives.exec_model import (
    broadcast_time,
    gatherv_time,
    reduce_time,
    scatterv_time,
)
from ..collectives.fnf import fnf_tree
from ..collectives.trees import CommTree, binomial_tree
from ..errors import ValidationError

__all__ = ["CommStats", "SimComm"]


def _payload_bytes(obj: Any) -> float:
    if isinstance(obj, np.ndarray):
        return float(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return float(len(obj))
    return float(sys.getsizeof(obj))


@dataclass
class CommStats:
    """Accumulated simulated-communication accounting."""

    operations: int = 0
    elapsed_seconds: float = 0.0
    bytes_moved: float = 0.0
    per_op_seconds: dict[str, float] = field(default_factory=dict)

    def charge(self, op: str, seconds: float, nbytes: float) -> None:
        self.operations += 1
        self.elapsed_seconds += seconds
        self.bytes_moved += nbytes
        self.per_op_seconds[op] = self.per_op_seconds.get(op, 0.0) + seconds


class SimComm:
    """MPI-style communicator over a simulated network.

    Parameters
    ----------
    alpha, beta:
        Live α-β matrices pricing every transfer (update via
        :meth:`set_network` to replay time-varying traces).
    weights:
        Optional link-weight estimate; when given, collectives use FNF trees
        built from it (the network-aware mode); otherwise MPICH binomial.

    Examples
    --------
    >>> import numpy as np
    >>> n = 4
    >>> alpha = np.zeros((n, n)); beta = np.full((n, n), 1e8)
    >>> np.fill_diagonal(beta, np.inf)
    >>> comm = SimComm(alpha, beta)
    >>> comm.bcast(np.arange(3), root=0)[2].tolist()
    [0, 1, 2]
    """

    def __init__(
        self,
        alpha: np.ndarray,
        beta: np.ndarray,
        *,
        weights: np.ndarray | None = None,
    ) -> None:
        a = np.asarray(alpha, dtype=np.float64)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValidationError("alpha must be square")
        self._n = a.shape[0]
        self.set_network(alpha, beta)
        self.weights = None if weights is None else np.asarray(weights, dtype=np.float64)
        if self.weights is not None and self.weights.shape != (self._n, self._n):
            raise ValidationError("weights shape must match the cluster size")
        self.stats = CommStats()
        self._tree_cache: dict[int, CommTree] = {}

    # -- configuration ------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of ranks (MPI's ``Get_size``)."""
        return self._n

    def set_network(self, alpha: np.ndarray, beta: np.ndarray) -> None:
        """Swap in a new live snapshot (trace replay advances time)."""
        a = np.asarray(alpha, dtype=np.float64)
        b = np.asarray(beta, dtype=np.float64)
        if a.shape != b.shape or a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValidationError("alpha/beta must be matching square matrices")
        if hasattr(self, "_n") and a.shape[0] != self._n:
            raise ValidationError("cluster size cannot change")
        self.alpha = a
        self.beta = b

    def set_weights(self, weights: np.ndarray | None) -> None:
        """Install (or clear) the network-aware link-weight estimate."""
        if weights is not None:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != (self._n, self._n):
                raise ValidationError("weights shape must match the cluster size")
            self.weights = w
        else:
            self.weights = None
        self._tree_cache.clear()

    def _tree(self, root: int) -> CommTree:
        check_index(root, self._n, "root")
        if root not in self._tree_cache:
            if self.weights is None:
                self._tree_cache[root] = binomial_tree(self._n, root)
            else:
                self._tree_cache[root] = fnf_tree(self.weights, root)
        return self._tree_cache[root]

    # -- point to point ----------------------------------------------------
    def send_time(self, src: int, dst: int, payload: Any) -> float:
        """Price (and account) one point-to-point transfer; returns seconds."""
        check_index(src, self._n, "src")
        check_index(dst, self._n, "dst")
        if src == dst:
            return 0.0
        nbytes = _payload_bytes(payload)
        b = self.beta[src, dst]
        if not b > 0:
            raise ValidationError(f"non-positive bandwidth on ({src}, {dst})")
        t = float(self.alpha[src, dst] + nbytes / b)
        self.stats.charge("send", t, nbytes)
        return t

    # -- collectives ---------------------------------------------------------
    def bcast(self, obj: Any, root: int = 0) -> list[Any]:
        """Broadcast *obj* from *root*; returns each rank's received value."""
        tree = self._tree(root)
        nbytes = _payload_bytes(obj)
        t = broadcast_time(tree, self.alpha, self.beta, nbytes)
        self.stats.charge("bcast", t, nbytes * (self._n - 1))
        return [obj] * self._n

    def scatter(self, chunks: Sequence[Any], root: int = 0) -> list[Any]:
        """Scatter ``chunks[i]`` to rank *i*; returns per-rank values.

        Per-rank payload sizes are honored (``Scatterv`` semantics), so
        unequal chunks price correctly.
        """
        if len(chunks) != self._n:
            raise ValidationError("scatter needs exactly one chunk per rank")
        tree = self._tree(root)
        sizes = np.array([_payload_bytes(c) for c in chunks])
        t = scatterv_time(tree, self.alpha, self.beta, sizes)
        moved = float(sizes.sum() - sizes[tree.root])
        self.stats.charge("scatter", t, moved)
        return list(chunks)

    def gather(self, value: Any, root: int = 0, *, all_values: Sequence[Any] | None = None) -> list[Any]:
        """Gather per-rank values at *root* (single-object convenience: pass
        ``all_values`` with each rank's contribution, or *value* is assumed
        identical everywhere)."""
        contributions = list(all_values) if all_values is not None else [value] * self._n
        if len(contributions) != self._n:
            raise ValidationError("gather needs exactly one value per rank")
        tree = self._tree(root)
        sizes = np.array([_payload_bytes(c) for c in contributions])
        t = gatherv_time(tree, self.alpha, self.beta, sizes)
        moved = float(sizes.sum() - sizes[tree.root])
        self.stats.charge("gather", t, moved)
        return contributions

    def reduce(
        self,
        values: Sequence[Any],
        op: Callable[[Any, Any], Any],
        root: int = 0,
    ) -> Any:
        """Reduce per-rank *values* with *op* at *root* (tree order)."""
        if len(values) != self._n:
            raise ValidationError("reduce needs exactly one value per rank")
        tree = self._tree(root)
        nbytes = max(_payload_bytes(v) for v in values)
        t = reduce_time(tree, self.alpha, self.beta, nbytes)
        self.stats.charge("reduce", t, nbytes * (self._n - 1))
        # Deterministic tree-order combine (children before parents).
        order = [tree.root]
        for u in order:
            order.extend(tree.children[u])
        acc: dict[int, Any] = {r: values[r] for r in range(self._n)}
        for u in reversed(order):
            for c in tree.children[u]:
                acc[u] = op(acc[u], acc[c])
        return acc[tree.root]

    def allgather(self, values: Sequence[Any], root: int = 0) -> list[list[Any]]:
        """Gather everyone's value everywhere (gather + bcast, per MPICH2).

        The broadcast phase carries the concatenation of all contributions,
        priced by their summed payload sizes.
        """
        gathered = self.gather(None, root, all_values=values)
        tree = self._tree(root)
        total_bytes = float(sum(_payload_bytes(v) for v in gathered))
        t = broadcast_time(tree, self.alpha, self.beta, total_bytes)
        self.stats.charge("bcast", t, total_bytes * (self._n - 1))
        return [list(gathered)] * self._n

    def alltoall(self, matrix: Sequence[Sequence[Any]], root: int = 0) -> list[list[Any]]:
        """Exchange ``matrix[src][dst]`` (gather + bcast composition)."""
        if len(matrix) != self._n or any(len(row) != self._n for row in matrix):
            raise ValidationError("alltoall needs an n x n payload matrix")
        rows = [list(r) for r in matrix]
        self.gather(None, root, all_values=rows)
        self.bcast(rows, root)
        return [[rows[src][dst] for src in range(self._n)] for dst in range(self._n)]

    # -- clock --------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Total simulated communication seconds so far."""
        return self.stats.elapsed_seconds
