"""Unit tests for the α-β tree execution model."""

import numpy as np
import pytest

from repro.collectives.exec_model import (
    broadcast_time,
    collective_time,
    gather_time,
    reduce_time,
    scatter_time,
    weights_to_alphabeta,
)
from repro.collectives.trees import CommTree, binomial_tree
from repro.errors import ValidationError


def uniform_net(n, alpha=0.0, beta=1.0):
    a = np.full((n, n), alpha)
    b = np.full((n, n), beta)
    np.fill_diagonal(a, 0.0)
    np.fill_diagonal(b, np.inf)
    return a, b


class TestBroadcast:
    def test_two_nodes(self):
        t = binomial_tree(2, 0)
        a, b = uniform_net(2, alpha=0.5, beta=10.0)
        assert broadcast_time(t, a, b, 20.0) == pytest.approx(2.5)

    def test_chain_accumulates(self):
        t = CommTree.from_parent(0, np.array([-1, 0, 1, 2]))
        a, b = uniform_net(4, beta=2.0)
        # Each hop costs nbytes/2; three sequential hops.
        assert broadcast_time(t, a, b, 4.0) == pytest.approx(6.0)

    def test_sequential_sends_at_parent(self):
        t = CommTree(root=0, parent=np.array([-1, 0, 0]), children=((1, 2), (), ()))
        a, b = uniform_net(3, beta=1.0)
        # Root sends to 1 then 2: arrivals at 1.0 and 2.0.
        assert broadcast_time(t, a, b, 1.0) == pytest.approx(2.0)

    def test_binomial_uniform_is_log_depth(self):
        n = 16
        t = binomial_tree(n, 0)
        a, b = uniform_net(n, beta=1.0)
        # log2(16)=4 serial message times on the critical path.
        assert broadcast_time(t, a, b, 1.0) == pytest.approx(4.0)

    def test_uses_live_matrix_not_build_matrix(self):
        t = binomial_tree(4, 0)
        a1, b1 = uniform_net(4, beta=1.0)
        a2, b2 = uniform_net(4, beta=2.0)
        assert broadcast_time(t, a1, b1, 1.0) == 2 * broadcast_time(t, a2, b2, 1.0)

    def test_matrix_size_mismatch(self):
        t = binomial_tree(4, 0)
        a, b = uniform_net(3)
        with pytest.raises(ValidationError, match="does not match"):
            broadcast_time(t, a, b, 1.0)


class TestScatter:
    def test_blocks_scale_with_subtree(self):
        # Chain 0→1→2: edge (0,1) carries 2 blocks, edge (1,2) one.
        t = CommTree.from_parent(0, np.array([-1, 0, 1]))
        a, b = uniform_net(3, beta=1.0)
        assert scatter_time(t, a, b, 1.0) == pytest.approx(3.0)

    def test_star_root_sends_all(self):
        t = CommTree(
            root=0, parent=np.array([-1, 0, 0, 0]), children=((1, 2, 3), (), (), ())
        )
        a, b = uniform_net(4, beta=1.0)
        # Sequential 1-block sends: arrivals at 1, 2, 3.
        assert scatter_time(t, a, b, 1.0) == pytest.approx(3.0)

    def test_scatter_cheaper_than_naive_blocks(self):
        # Total bytes moved by binomial scatter is n·log(n)/2-ish blocks, so
        # its time beats broadcasting the full payload along the same tree.
        n = 8
        t = binomial_tree(n, 0)
        a, b = uniform_net(n, beta=1.0)
        assert scatter_time(t, a, b, 1.0) < broadcast_time(t, a, b, float(n))


class TestDuality:
    def test_gather_mirrors_scatter_uniform(self):
        n = 8
        t = binomial_tree(n, 0)
        a, b = uniform_net(n, beta=3.0, alpha=0.001)
        assert gather_time(t, a, b, 1.0) == pytest.approx(scatter_time(t, a, b, 1.0))

    def test_reduce_mirrors_broadcast_uniform(self):
        n = 8
        t = binomial_tree(n, 0)
        a, b = uniform_net(n, beta=3.0, alpha=0.001)
        assert reduce_time(t, a, b, 1.0) == pytest.approx(broadcast_time(t, a, b, 1.0))

    def test_gather_uses_reverse_direction_weights(self):
        t = CommTree.from_parent(0, np.array([-1, 0]))
        a = np.zeros((2, 2))
        b = np.array([[np.inf, 1.0], [4.0, np.inf]])
        # Broadcast uses link 0→1 (beta 1); gather uses 1→0 (beta 4).
        assert broadcast_time(t, a, b, 4.0) == pytest.approx(4.0)
        assert gather_time(t, a, b, 4.0) == pytest.approx(1.0)


class TestDispatchAndHelpers:
    def test_collective_time_dispatch(self):
        t = binomial_tree(4, 0)
        a, b = uniform_net(4)
        for op in ("broadcast", "scatter", "reduce", "gather"):
            assert collective_time(op, t, a, b, 1.0) > 0

    def test_unknown_op(self):
        t = binomial_tree(2, 0)
        a, b = uniform_net(2)
        with pytest.raises(ValueError, match="unknown collective"):
            collective_time("alltoall", t, a, b, 1.0)

    def test_weights_to_alphabeta_roundtrip(self):
        w = np.array([[0.0, 2.0], [3.0, 0.0]])
        a, b = weights_to_alphabeta(w, 6.0)
        assert a[0, 1] == 0.0
        assert 6.0 / b[0, 1] == pytest.approx(2.0)
        assert 6.0 / b[1, 0] == pytest.approx(3.0)

    def test_weights_to_alphabeta_rejects_nonpositive(self):
        w = np.zeros((2, 2))
        with pytest.raises(ValidationError):
            weights_to_alphabeta(w, 1.0)

    def test_zero_bandwidth_link_rejected_at_pricing(self):
        t = CommTree.from_parent(0, np.array([-1, 0]))
        a = np.zeros((2, 2))
        b = np.zeros((2, 2))
        with pytest.raises(ValidationError, match="bandwidth"):
            broadcast_time(t, a, b, 1.0)
