"""The decomposition engine: rolling windows, warm starts, instrumentation.

Algorithm 1 keeps re-running "calibrate a window, RPCA it" as the trace
advances, and historically every layer re-derived the TP-matrix from scratch
(``trace.tp_matrix(...)``) and solved cold each time. The
:class:`DecompositionEngine` owns that loop for long-running operation:

* a **rolling window cache** — per-snapshot weight rows are computed once
  and stitched into TP-matrix windows, byte-identical to
  ``trace.tp_matrix(nbytes, start, count)``, so successive overlapping
  windows share all their unchanged rows;
* **warm-started recalibration** — when the registered solver supports it
  (see :class:`~repro.core.solvers.SolverSpec.supports_warm_start`), each
  solve is initialized from the previous window's solution, cutting the
  iteration count of APG/IALM re-solves;
* **instrumentation** — every solve lands a
  :class:`~repro.observability.SolveSpan` plus warm/cold and cache-hit
  counters in the engine's :class:`~repro.observability.Instrumentation`
  (and any outer sink activated via
  :func:`~repro.observability.instrumented`).

The engine reads snapshots through the small :class:`WindowSource` protocol;
a :class:`~repro.cloudsim.trace.CalibrationTrace` is adapted automatically,
and :meth:`repro.calibration.calibrator.Calibrator.engine` adapts a live
measurement substrate.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

import numpy as np

from .._validation import check_nonnegative
from ..errors import ValidationError
from ..observability import Instrumentation, instrumented
from .decompose import Decomposition, decompose
from .matrices import TPMatrix
from .solvers import solver_spec

__all__ = ["WindowSource", "TraceWindowSource", "DecompositionEngine"]


@runtime_checkable
class WindowSource(Protocol):
    """Anything the engine can read calibration snapshots from."""

    @property
    def n_machines(self) -> int:
        """Number of machines per snapshot."""
        ...

    @property
    def n_snapshots(self) -> int:
        """Number of snapshots addressable by :meth:`snapshot_row`."""
        ...

    def snapshot_row(self, k: int, nbytes: float) -> np.ndarray:
        """Snapshot *k* as a flattened ``N²`` weight row for *nbytes*."""
        ...

    def timestamp(self, k: int) -> float:
        """Measurement time of snapshot *k* in seconds."""
        ...


class TraceWindowSource:
    """Adapt a :class:`~repro.cloudsim.trace.CalibrationTrace` to :class:`WindowSource`.

    Row values are computed exactly as ``trace.tp_matrix`` computes them
    (same elementwise operations on the same α/β entries), so windows
    assembled from these rows are byte-identical to the direct call.
    """

    def __init__(self, trace: Any) -> None:
        for attr in ("alpha", "beta", "timestamps", "n_machines", "n_snapshots"):
            if not hasattr(trace, attr):
                raise ValidationError(
                    f"trace-like source must expose {attr!r}; got {type(trace).__name__}"
                )
        self.trace = trace
        self._off = ~np.eye(trace.n_machines, dtype=bool)

    @property
    def n_machines(self) -> int:
        return int(self.trace.n_machines)

    @property
    def n_snapshots(self) -> int:
        return int(self.trace.n_snapshots)

    def snapshot_row(self, k: int, nbytes: float) -> np.ndarray:
        a = self.trace.alpha[k]
        b = self.trace.beta[k]
        w = np.zeros_like(a)
        w[self._off] = a[self._off] + nbytes / b[self._off]
        return w.reshape(-1)

    def timestamp(self, k: int) -> float:
        return float(self.trace.timestamps[k])


class DecompositionEngine:
    """Warm-started decomposition over rolling windows of a snapshot source.

    Parameters
    ----------
    source:
        A :class:`WindowSource`, or a
        :class:`~repro.cloudsim.trace.CalibrationTrace` (adapted
        automatically).
    nbytes:
        Message size the TP-matrix windows are built for.
    time_step:
        Calibration window length (paper default 10).
    solver:
        Registered solver name; validated at construction.
    extraction:
        Constant-row extraction rule (see
        :func:`~repro.core.decompose.constant_row`).
    warm_start:
        Initialize each solve from the previous window's solution when the
        solver supports it. Disable for bitwise cold-path reproduction.
    instrumentation:
        Sink for counters and solve spans; a fresh one is created if omitted.
    max_cached_rows:
        Bound on the per-snapshot row cache (LRU eviction); ``None`` keeps
        every row ever computed — right for replays that wrap around.
    **solver_kwargs:
        Forwarded to every solve (``tol``, ``max_iter``, ...); validated
        against the solver's :class:`~repro.core.solvers.SolverSpec`.
    """

    def __init__(
        self,
        source: Any,
        *,
        nbytes: float,
        time_step: int = 10,
        solver: str = "apg",
        extraction: str = "mean",
        warm_start: bool = True,
        instrumentation: Instrumentation | None = None,
        max_cached_rows: int | None = None,
        **solver_kwargs: Any,
    ) -> None:
        if not isinstance(source, WindowSource):
            source = TraceWindowSource(source)
        self.source: WindowSource = source
        check_nonnegative(nbytes, "nbytes")
        if int(time_step) < 1:
            raise ValidationError("time_step must be >= 1")
        if max_cached_rows is not None and int(max_cached_rows) < 1:
            raise ValidationError("max_cached_rows must be >= 1 or None")
        self.nbytes = float(nbytes)
        self.time_step = int(time_step)
        self.solver = solver
        self.spec = solver_spec(solver)  # fails fast on unknown names
        self.spec.validate_kwargs(solver_kwargs)
        self.extraction = extraction
        self.warm_start = bool(warm_start)
        self.solver_kwargs = dict(solver_kwargs)
        self.instrumentation = (
            instrumentation if instrumentation is not None else Instrumentation("engine")
        )
        self.max_cached_rows = max_cached_rows
        self._rows: dict[int, np.ndarray] = {}  # insertion order == LRU order
        self._last: Decomposition | None = None

    # -- state ------------------------------------------------------------
    @property
    def last(self) -> Decomposition | None:
        """The most recent decomposition (the warm-start seed), if any."""
        return self._last

    def reset_warm_state(self) -> None:
        """Forget the previous solution; the next solve starts cold."""
        self._last = None

    # -- rolling window cache ---------------------------------------------
    def _row(self, k: int) -> np.ndarray:
        row = self._rows.pop(k, None)
        if row is None:
            self.instrumentation.count("engine.window.miss")
            row = np.asarray(self.source.snapshot_row(k, self.nbytes), dtype=np.float64)
            row.setflags(write=False)
        else:
            self.instrumentation.count("engine.window.hit")
        self._rows[k] = row  # re-insert: most recently used
        if self.max_cached_rows is not None and len(self._rows) > self.max_cached_rows:
            self._rows.pop(next(iter(self._rows)))  # least recently used
        return row

    def window(self, start: int, stop: int) -> TPMatrix:
        """TP-matrix for snapshots ``[start, stop)`` from cached rows.

        Byte-identical to ``trace.tp_matrix(nbytes, start=start,
        count=stop-start)`` for trace-backed sources.
        """
        t = self.source.n_snapshots
        if not 0 <= start < stop <= t:
            raise ValidationError(f"invalid window [{start}, {stop}) for {t} snapshots")
        rows = np.stack([self._row(k) for k in range(start, stop)])
        ts = np.array([self.source.timestamp(k) for k in range(start, stop)])
        return TPMatrix(data=rows, n_machines=self.source.n_machines, timestamps=ts)

    # -- solving -----------------------------------------------------------
    def solve(self, tp: TPMatrix) -> Decomposition:
        """Decompose *tp*, warm-starting from the previous solve if possible."""
        kwargs = dict(self.solver_kwargs)
        seed = self._last.solver_result if self._last is not None else None
        warm = (
            self.warm_start
            and self.spec.supports_warm_start
            and seed is not None
            and seed.shape == tp.data.shape
        )
        if warm:
            kwargs["warm_start"] = seed
        self.instrumentation.count(
            "engine.solve.warm" if warm else "engine.solve.cold"
        )
        with instrumented(self.instrumentation):
            with self.instrumentation.timed("engine.solve_seconds"):
                dec = decompose(
                    tp, solver=self.solver, extraction=self.extraction, **kwargs
                )
        self._last = dec
        return dec

    def calibrate(self, end: int) -> Decomposition:
        """Solve the trailing ``time_step`` window ending at snapshot *end*.

        The Algorithm-1 re-calibration primitive: windows from successive
        calls overlap, so rows come from the cache and the solve warm-starts
        from the previous solution.
        """
        start = max(0, end - self.time_step)
        return self.solve(self.window(start, end))
