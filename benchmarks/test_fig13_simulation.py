"""Fig 13 — four-arm comparison on the simulated large-scale cluster.

Paper shape at Norm(N_E) ≈ 0.1: Topology-aware ≈ Baseline (static topology
knowledge is useless under dynamics); RPCA 25-40% better than both and
10-15% better than Heuristics; CDFs preserve the ordering.
"""

import numpy as np

from repro.experiments import fig13_simulation
from repro.experiments.report import format_table
from repro.netsim.background import BackgroundConfig
from repro.netsim.topology import GBIT

MB = 1024 * 1024


def test_fig13_simulated_cluster(benchmark, emit):
    result = benchmark.pedantic(
        fig13_simulation.run,
        kwargs=dict(
            n_racks=16,
            servers_per_rack=16,
            cluster_size=24,
            background=BackgroundConfig(
                n_pairs=160, message_bytes=100 * MB, mean_wait_seconds=1.0
            ),
            n_snapshots=20,
            time_step=10,
            gap_seconds=20.0,
            repetitions=60,
            solver="apg",
            core_bandwidth=5.0 * GBIT,  # 3.2:1 oversubscription as in the paper
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )

    emit(
        format_table(
            ["strategy", "broadcast", "scatter", "topo-mapping"],
            result.normalized_table(),
            title=(
                f"Fig 13a: normalized means in the simulator "
                f"(Norm(N_E) = {result.norm_ne:.3f})"
            ),
        )
    )
    cdf_rows = []
    for name in result.broadcast.times:
        v, _ = result.broadcast_cdf(name)
        cdf_rows.append((name, *np.percentile(v, [25, 50, 75]).round(4)))
    emit(format_table(["strategy", "p25", "p50", "p75"], cdf_rows,
                      title="Fig 13b: broadcast CDF quartiles (s)"))

    norm = result.broadcast.normalized_means()
    # RPCA beats Baseline and the static Topology-aware arm.
    assert result.broadcast.improvement("RPCA", "Baseline") > 0.10
    assert result.broadcast.improvement("RPCA", "Topology-aware") > 0.05
    # Topology-aware is NOT competitive with RPCA (the paper's headline for
    # this figure): it tracks Baseline within noise rather than RPCA.
    assert norm["Topology-aware"] > norm["RPCA"]
    # RPCA at least matches Heuristics.
    assert result.broadcast.mean("RPCA") <= result.broadcast.mean("Heuristics") * 1.05
    # Scatter and mapping orderings.
    assert result.scatter.improvement("RPCA", "Baseline") > 0.0
    assert result.mapping.improvement("RPCA", "Baseline") > 0.0
