"""Unit tests for the non-robust PCA baseline and its contrast with RPCA."""

import numpy as np
import pytest

from repro.core.decompose import decompose
from repro.core.matrices import TPMatrix
from repro.core.pca import pca_rank1_decomposition
from repro.core.solvers import available_solvers, solve_rpca


class TestPCARank1:
    def test_rank_one_input_exact(self):
        rng = np.random.default_rng(0)
        row = rng.uniform(1, 2, size=12)
        a = np.outer(rng.uniform(0.9, 1.1, size=6), row)
        res = pca_rank1_decomposition(a)
        np.testing.assert_allclose(res.low_rank, a, atol=1e-10)
        np.testing.assert_allclose(res.sparse, 0.0, atol=1e-10)
        assert res.rank == 1

    def test_zero_matrix(self):
        res = pca_rank1_decomposition(np.zeros((4, 5)))
        assert res.rank == 0 and res.converged

    def test_additive_split(self):
        a = np.random.default_rng(1).uniform(1, 3, size=(5, 8))
        res = pca_rank1_decomposition(a)
        np.testing.assert_allclose(res.low_rank + res.sparse, a, atol=1e-10)

    def test_best_rank_one_in_frobenius(self):
        # Eckart-Young: no rank-1 matrix is closer in Frobenius norm.
        rng = np.random.default_rng(2)
        a = rng.standard_normal((6, 7))
        res = pca_rank1_decomposition(a)
        best = np.linalg.norm(a - res.low_rank)
        for _ in range(20):
            u = rng.standard_normal(6)
            v = rng.standard_normal(7)
            cand = np.outer(u, v)
            # Optimal scaling of the candidate direction:
            scale = float((a * cand).sum() / (cand * cand).sum())
            assert np.linalg.norm(a - scale * cand) >= best - 1e-9

    def test_registered_in_solver_registry(self):
        assert "pca" in available_solvers()
        a = np.random.default_rng(3).uniform(1, 2, size=(4, 9))
        res = solve_rpca(a, solver="pca")
        assert res.rank in (0, 1)


class TestPCAVsRPCARobustness:
    """The paper's Sec II-B motivation: PCA is dragged by gross errors."""

    def make_tp_with_outlier(self, outlier_scale):
        rng = np.random.default_rng(4)
        n = 6
        base = rng.uniform(0.5, 2.0, size=(n, n))
        np.fill_diagonal(base, 0.0)
        flat = base.ravel()
        data = np.tile(flat, (10, 1))
        data += 0.02 * rng.standard_normal(data.shape) * (flat > 0)
        # One catastrophic snapshot (e.g. the cluster hit a congestion storm).
        data[3] = flat * outlier_scale
        return TPMatrix(data=np.abs(data), n_machines=n), flat

    def test_pca_dragged_rpca_robust(self):
        tp, truth = self.make_tp_with_outlier(outlier_scale=8.0)
        off = truth > 0
        pca_row = decompose(tp, solver="pca").constant.row
        rpca_row = decompose(tp, solver="row_constant").constant.row
        pca_err = np.abs(pca_row[off] - truth[off]) / truth[off]
        rpca_err = np.abs(rpca_row[off] - truth[off]) / truth[off]
        # The outlier inflates PCA's row badly; the robust row barely moves.
        assert np.median(rpca_err) < 0.05
        assert np.median(pca_err) > 3 * np.median(rpca_err)

    def test_agree_without_outliers(self):
        tp, truth = self.make_tp_with_outlier(outlier_scale=1.0)
        off = truth > 0
        pca_row = decompose(tp, solver="pca").constant.row
        rpca_row = decompose(tp, solver="apg").constant.row
        rel = np.abs(pca_row[off] - rpca_row[off]) / truth[off]
        assert np.median(rel) < 0.05
