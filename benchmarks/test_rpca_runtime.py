"""Sec V-B runtime claims: RPCA solves the 196-instance TP-matrix fast.

Paper: "The execution time for running RPCA once is less than 1 minute in
the experiments with 196 instances" (a 10 × 38416 matrix), and the RPCA
calculation contributes <2% of total overhead. Our numpy solvers are far
faster than that bound; the benchmark records the actual per-solve time.

The backend matrix below tracks both pluggable kernel layers: each solver
runs under combinations of the partial-SVD backend (``repro.core.kernels``,
``exact`` vs ``auto``) and the elementwise backend
(``repro.core.elementwise``, ``reference`` vs ``fused`` vs — when numba is
installed — ``jit``). The final test writes ``BENCH_rpca.json`` at the repo
root — mean solve time, iterations, SVD share *and* elementwise share per
cell, plus auto-vs-exact and fused-vs-reference speedups per solver — so
future PRs can track the perf trajectory. Numerical parity is asserted
unconditionally (bit-identity for ``fused``, solver tolerance for ``auto``
and ``jit``); the speedup targets are only *asserted* when
``REPRO_PERF_STRICT=1`` (CI runs record timings but fail on parity, not on
a noisy shared runner's clock).
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro import observability
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.core.decompose import decompose
from repro.core.elementwise import jit_available
from repro.observability.benchrecord import bench_record, write_bench_json

MB = 1024 * 1024
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_rpca.json"
SPEEDUP_TARGET = 5.0  # auto vs exact (SVD layer)
EW_SPEEDUP_TARGET = 2.5  # auto+fused vs auto+reference (elementwise layer)
ROUNDS = 3
SEED = 196

# The (svd_backend, elementwise_backend) cells each solver runs. "exact"
# only pairs with "reference" (the bit-pinned historical loop has no step
# seam for the elementwise kernel); the jit cell is skipped without numba.
COMBOS = [
    ("exact", "reference"),
    ("auto", "reference"),
    ("auto", "fused"),
    ("auto", "jit"),
]

# Filled by the backend-matrix benchmarks, consumed (and written out) by
# test_backend_speedup_and_emit below. Keyed by (solver, svd, ew).
_MATRIX: dict[tuple[str, str, str], dict] = {}


@pytest.fixture(scope="module")
def tp_196():
    trace = generate_trace(TraceConfig(n_machines=196, n_snapshots=10), seed=SEED)
    return trace.tp_matrix(8 * MB)


@pytest.mark.parametrize("solver", ["apg", "ialm", "row_constant"])
def test_rpca_solver_runtime_196_instances(benchmark, tp_196, solver):
    dec = benchmark(decompose, tp_196, solver=solver)
    assert dec.constant.row.size == 196 * 196
    # The paper's bound, with two orders of magnitude to spare expected.
    stats = benchmark.stats.stats
    assert stats.mean < 60.0


@pytest.mark.parametrize("svd,ew", COMBOS)
@pytest.mark.parametrize("solver", ["apg", "ialm"])
def test_rpca_backend_matrix_196_instances(benchmark, tp_196, solver, svd, ew):
    """One (solver, svd, ew) cell: benchmark it and record the diagnostics."""
    if ew == "jit" and not jit_available():
        pytest.skip("numba not installed; jit elementwise cell skipped")
    sink = observability.Instrumentation(f"{solver}-{svd}-{ew}")
    ew_kwarg = None if ew == "reference" else ew

    def run():
        with observability.instrumented(sink):
            return decompose(
                tp_196, solver=solver, svd_backend=svd, elementwise_backend=ew_kwarg
            )

    dec = benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=0)
    stats = benchmark.stats.stats
    assert stats.mean < 60.0  # the paper's bound holds for every backend

    total_seconds = float(sum(span.seconds for span in sink.spans))
    svt_seconds = sink.timers.get("kernel.svt_seconds")
    ew_seconds = sink.timers.get("kernel.ew_seconds")

    def share(seconds):
        # Fraction of solve time spent in that kernel phase.
        if seconds is None or total_seconds <= 0:
            return None
        return float(seconds / total_seconds)

    _MATRIX[(solver, svd, ew)] = {
        "solver": solver,
        "backend": svd,
        "elementwise_backend": ew,
        "rounds": ROUNDS,
        "mean_seconds": float(stats.mean),
        "iterations": dec.solver_iterations,
        "rank": dec.solver_result.rank,
        "converged": dec.solver_converged,
        # Both SVT paths report svd_share: partial backends time
        # SVTKernel.svt, the exact path times its full-SVD shrinkage.
        # ew_share is the step-recurrence time outside SVT and norms.
        "svd_share": share(svt_seconds),
        "ew_share": share(ew_seconds),
        "full_width_svds": sink.counters.get("kernel.svt.full_width", 0),
        "constant_row": dec.constant.row,
    }


def test_backend_speedup_and_emit(tp_196, emit):
    """Parity across backends, the perf record, and the strict speedup gates.

    Runs after the matrix cells above (pytest executes in definition
    order). Parity is unconditional — bit-identity for fused, solver
    tolerance for auto and jit; the speedup targets are only assertions
    under ``REPRO_PERF_STRICT=1`` so CI fails on correctness, not on a
    loaded runner's timings.
    """
    expected = 2 * (len(COMBOS) - (0 if jit_available() else 1))
    assert len(_MATRIX) == expected, (
        "backend matrix did not populate (run the whole module)"
    )

    svd_speedups = {}
    ew_speedups = {}
    for solver in ("apg", "ialm"):
        exact = _MATRIX[(solver, "exact", "reference")]
        auto = _MATRIX[(solver, "auto", "reference")]
        fused = _MATRIX[(solver, "auto", "fused")]
        # Cold partial-backend solves agree with exact to solver tolerance.
        scale = float(np.abs(exact["constant_row"]).max())
        diff = float(np.abs(auto["constant_row"] - exact["constant_row"]).max())
        assert diff <= 1e-6 * scale, (
            f"{solver}: auto backend P_D diverged from exact "
            f"(max abs diff {diff:.3e} vs scale {scale:.3e})"
        )
        assert auto["iterations"] == exact["iterations"]
        assert auto["rank"] == exact["rank"]
        # The fused elementwise backend is bit-identical by contract.
        assert np.array_equal(fused["constant_row"], auto["constant_row"]), (
            f"{solver}: fused elementwise backend broke bit-parity"
        )
        assert fused["iterations"] == auto["iterations"]
        assert fused["rank"] == auto["rank"]
        if jit_available():
            jit = _MATRIX[(solver, "auto", "jit")]
            jdiff = float(np.abs(jit["constant_row"] - auto["constant_row"]).max())
            assert jdiff <= 1e-6 * scale, (
                f"{solver}: jit elementwise backend outside certification "
                f"tolerance (max abs diff {jdiff:.3e} vs scale {scale:.3e})"
            )
        # Steady state never falls back to a full-width SVD on this shape.
        assert auto["full_width_svds"] == 0
        svd_speedups[solver] = exact["mean_seconds"] / auto["mean_seconds"]
        ew_speedups[solver] = auto["mean_seconds"] / fused["mean_seconds"]

    record = bench_record(
        "rpca_runtime_196_instances",
        seeds=[SEED],
        backend=None,  # per-cell backends live in "results"
        matrix_shape=[tp_196.data.shape[0], tp_196.data.shape[1]],
        speedup_target=SPEEDUP_TARGET,
        ew_speedup_target=EW_SPEEDUP_TARGET,
        speedup_auto_vs_exact={k: float(v) for k, v in svd_speedups.items()},
        speedup_fused_vs_reference={k: float(v) for k, v in ew_speedups.items()},
        jit_available=jit_available(),
        results=[
            {k: v for k, v in cell.items() if k != "constant_row"}
            for cell in _MATRIX.values()
        ],
    )
    write_bench_json(BENCH_JSON, record)

    lines = [f"rpca backend matrix ({tp_196.data.shape}, {ROUNDS} rounds):"]
    for cell in record["results"]:

        def fmt(share):
            return "—" if share is None else f"{share:.0%}"

        lines.append(
            f"  {cell['solver']:<5} {cell['backend']:<6} "
            f"{cell['elementwise_backend']:<9} "
            f"{cell['mean_seconds'] * 1e3:9.1f} ms  "
            f"{cell['iterations']:4d} iters  "
            f"svd {fmt(cell['svd_share'])}  ew {fmt(cell['ew_share'])}"
        )
    lines.append(
        "  speedup auto vs exact: "
        + ", ".join(f"{s} {v:.1f}x" for s, v in svd_speedups.items())
        + f"  (target >= {SPEEDUP_TARGET}x)"
    )
    lines.append(
        "  speedup fused vs reference: "
        + ", ".join(f"{s} {v:.2f}x" for s, v in ew_speedups.items())
        + f"  (target >= {EW_SPEEDUP_TARGET}x, wrote {BENCH_JSON.name})"
    )
    emit("\n".join(lines))

    best_svd = max(svd_speedups.values())
    best_ew = max(ew_speedups.values())
    if os.environ.get("REPRO_PERF_STRICT") == "1":
        assert best_svd >= SPEEDUP_TARGET, (
            f"expected >= {SPEEDUP_TARGET}x auto-vs-exact speedup on at "
            f"least one solver, measured {svd_speedups}"
        )
        assert best_ew >= EW_SPEEDUP_TARGET, (
            f"expected >= {EW_SPEEDUP_TARGET}x fused-vs-reference speedup "
            f"on at least one solver, measured {ew_speedups}"
        )
    elif best_svd < SPEEDUP_TARGET or best_ew < EW_SPEEDUP_TARGET:
        pytest.skip(
            f"speedups (svd {best_svd:.1f}x / ew {best_ew:.2f}x) below "
            f"targets ({SPEEDUP_TARGET}x / {EW_SPEEDUP_TARGET}x) but "
            "REPRO_PERF_STRICT not set (recorded, not enforced)"
        )
