"""Unit tests for in-simulator collective execution."""

import numpy as np
import pytest

from repro.collectives.exec_model import broadcast_time, scatter_time
from repro.collectives.trees import CommTree, binomial_tree
from repro.netsim.collective_runner import run_broadcast_in_sim, run_scatter_in_sim
from repro.netsim.simulator import FlowSimulator
from repro.netsim.topology import TreeTopology

MB = 1024 * 1024


def idle_sim(n_racks=2, servers=4):
    return FlowSimulator(TreeTopology(n_racks=n_racks, servers_per_rack=servers))


class TestBroadcastInSim:
    def test_two_node_duration(self):
        sim = idle_sim()
        topo = sim.topology
        tree = binomial_tree(2, 0)
        res = run_broadcast_in_sim(sim, tree, [0, 1], topo.rack_bandwidth)
        # 1 second of data + path latency.
        assert res.elapsed == pytest.approx(1.0 + topo.path_latency(0, 1), rel=1e-6)
        assert res.n_flows == 1

    def test_matches_alpha_beta_model_on_idle_network(self):
        # With no contention the fluid measurement must agree with the
        # analytic α-β pricing using the topology's nominal parameters.
        sim = idle_sim()
        topo = sim.topology
        machines = [0, 1, 2, 4, 5, 6]
        n = len(machines)
        tree = binomial_tree(n, 0)
        measured = run_broadcast_in_sim(sim, tree, machines, 8 * MB)

        alpha = np.zeros((n, n))
        beta = np.zeros((n, n))
        for i, mi in enumerate(machines):
            for j, mj in enumerate(machines):
                if i == j:
                    beta[i, j] = np.inf
                    continue
                alpha[i, j] = topo.path_latency(mi, mj)
                beta[i, j] = topo.rack_bandwidth  # access links bottleneck
        predicted = broadcast_time(tree, alpha, beta, 8 * MB)
        assert measured.elapsed == pytest.approx(predicted, rel=0.02)

    def test_single_node_tree(self):
        sim = idle_sim()
        tree = CommTree(root=0, parent=np.array([-1]), children=((),))
        res = run_broadcast_in_sim(sim, tree, [3], 1 * MB)
        assert res.elapsed == 0.0 and res.n_flows == 0

    def test_contention_slows_measurement(self):
        sim = idle_sim()
        topo = sim.topology
        # Hog machine 0's uplink during the broadcast.
        sim.schedule_flow(0.0, 0, 2, 200 * MB)
        sim.run_until(0.01)
        tree = binomial_tree(2, 0)
        res = run_broadcast_in_sim(sim, tree, [0, 1], topo.rack_bandwidth)
        assert res.elapsed > 1.5  # would be ~1 s uncontended

    def test_sequential_sends_respected(self):
        # Star tree: root sends to 3 children one after another.
        sim = idle_sim()
        topo = sim.topology
        tree = CommTree(
            root=0, parent=np.array([-1, 0, 0, 0]), children=((1, 2, 3), (), (), ())
        )
        res = run_broadcast_in_sim(sim, tree, [0, 1, 2, 3], topo.rack_bandwidth)
        assert res.elapsed == pytest.approx(3.0, rel=1e-3)


class TestScatterInSim:
    def test_chain_blocks(self):
        sim = idle_sim()
        topo = sim.topology
        tree = CommTree.from_parent(0, np.array([-1, 0, 1]))
        res = run_scatter_in_sim(sim, tree, [0, 1, 2], topo.rack_bandwidth)
        # Edge (0,1) carries 2 blocks (2 s), then (1,2) one block (1 s).
        assert res.elapsed == pytest.approx(3.0, rel=1e-3)

    def test_matches_model_on_idle_network(self):
        sim = idle_sim()
        topo = sim.topology
        machines = [0, 1, 4, 5]
        n = len(machines)
        tree = binomial_tree(n, 0)
        measured = run_scatter_in_sim(sim, tree, machines, 2 * MB)
        alpha = np.zeros((n, n))
        beta = np.full((n, n), topo.rack_bandwidth)
        np.fill_diagonal(beta, np.inf)
        for i, mi in enumerate(machines):
            for j, mj in enumerate(machines):
                if i != j:
                    alpha[i, j] = topo.path_latency(mi, mj)
        predicted = scatter_time(tree, alpha, beta, 2 * MB)
        assert measured.elapsed == pytest.approx(predicted, rel=0.02)
