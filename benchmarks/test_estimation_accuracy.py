"""Sec V-D3 — accuracy of the trace-replay performance estimation.

The paper validates its replay methodology by comparing estimated
performance distributions against real measurements: "the average
difference is only 18% and 9% for baseline and RPCA, respectively."

Here the "real measurement" is a broadcast executed flow-by-flow inside the
simulator (competing with live background traffic), and the estimate is the
α-β pricing of the same tree on the most recent calibrated snapshot. The
RPCA tree's estimates are more accurate than the Baseline tree's because
FNF deliberately routes over the *stable* links — the same reason the paper
observed 9% vs 18%.
"""

import numpy as np

from repro.collectives.fnf import fnf_tree
from repro.collectives.trees import binomial_tree
from repro.collectives.exec_model import broadcast_time
from repro.core.decompose import decompose
from repro.experiments.netsim_support import build_scenario, calibrate_netsim_trace
from repro.experiments.report import format_table
from repro.netsim.background import BackgroundConfig
from repro.netsim.collective_runner import run_broadcast_in_sim
from repro.netsim.topology import GBIT

MB = 1024 * 1024


def run_study():
    scenario = build_scenario(
        n_racks=8,
        servers_per_rack=8,
        cluster_size=16,
        background=BackgroundConfig(
            n_pairs=48, message_bytes=100 * MB, mean_wait_seconds=2.0
        ),
        core_bandwidth=2.5 * GBIT,
        seed=17,
    )
    trace = calibrate_netsim_trace(scenario, n_snapshots=10, gap_seconds=15.0)
    constant = decompose(
        trace.tp_matrix(8 * MB), solver="apg"
    ).performance_matrix().weights

    n = scenario.n_machines
    rng = np.random.default_rng(5)
    diffs: dict[str, list[float]] = {"Baseline": [], "RPCA": []}
    for rep in range(20):
        root = int(rng.integers(n))
        trees = {
            "Baseline": binomial_tree(n, root),
            "RPCA": fnf_tree(constant, root),
        }
        # Fresh calibrated snapshot = the estimate's input; then measure.
        for name, tree in trees.items():
            k = rep % trace.n_snapshots
            est = broadcast_time(tree, trace.alpha[k], trace.beta[k], 8 * MB)
            measured = run_broadcast_in_sim(
                scenario.sim, tree, scenario.machines, 8 * MB
            ).elapsed
            diffs[name].append(abs(est - measured) / measured)
            scenario.sim.run_until(scenario.sim.now + 5.0)  # decorrelate reps
    return {name: float(np.mean(v)) for name, v in diffs.items()}


def test_estimation_accuracy(benchmark, emit):
    mean_diff = benchmark.pedantic(run_study, rounds=1, iterations=1)

    emit(
        format_table(
            ["tree", "mean |estimate − measured| / measured"],
            list(mean_diff.items()),
            title=(
                "Sec V-D3: trace-replay estimation accuracy "
                "(paper: 18% baseline, 9% RPCA)"
            ),
        )
    )

    # Estimates are usable for both arms ...
    assert mean_diff["Baseline"] < 0.6
    assert mean_diff["RPCA"] < 0.4
    # ... and the RPCA tree's estimates are the more accurate ones.
    assert mean_diff["RPCA"] < mean_diff["Baseline"]
