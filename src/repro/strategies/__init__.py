"""The four approaches the paper compares (Sec V-A, "Comparisons").

* :class:`BaselineStrategy` — no network awareness (MPICH binomial trees,
  ring mapping).
* :class:`HeuristicStrategy` — direct use of measurements: per-link column
  mean of the TP-matrix (the paper's "Heuristics"), plus the min and EWMA
  variants the paper says behave the same.
* :class:`TopologyAwareStrategy` — classic topology-based optimization
  using the (simulated) ground-truth topology; only meaningful on the
  netsim substrate, exactly as in the paper.
* :class:`RPCAStrategy` — the paper's contribution: decompose, optimize on
  the constant component, maintain via Algorithm 1.
"""

from .base import Strategy
from .baseline import BaselineStrategy
from .heuristics import HeuristicStrategy
from .topology_aware import TopologyAwareStrategy
from .rpca import RPCAStrategy

__all__ = [
    "Strategy",
    "BaselineStrategy",
    "HeuristicStrategy",
    "TopologyAwareStrategy",
    "RPCAStrategy",
]
