"""Controlled-``Norm(N_E)`` noise injection (paper Sec V-D3).

For the Fig 10/11 studies the paper "randomly assign[s] noises to the trace
so that N_E is generated", nudging performance in 1% steps until the
decomposition's ``Norm(N_E)`` reaches a predefined target. We implement the
same closed loop but converge with bisection on a single *amplitude* knob
instead of 1% random walks — the monotone relationship between injected
noise amplitude and measured ``Norm(N_E)`` makes bisection both faster and
exactly reproducible.

The noise shape follows the paper's description: performance "change[s] by
1% (increase or decrease)" repeatedly until the target is reached — i.e.
each perturbed cell accumulates many small symmetric multiplicative nudges,
which compounds to a lognormal factor. *density* controls which fraction of
(snapshot, link) cells are perturbed at all: sparse settings model localized
interference (RPCA's sweet spot), the dense default models the paper's
whole-trace noising.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_in_range, check_probability
from ..core.decompose import decompose
from ..errors import ValidationError
from ..utils.seeding import spawn_rng
from .trace import CalibrationTrace

__all__ = ["measure_trace_norm_ne", "inject_noise_to_target"]


def measure_trace_norm_ne(
    trace: CalibrationTrace,
    *,
    nbytes: float = 8 * 1024 * 1024,
    solver: str = "row_constant",
    time_step: int | None = None,
) -> float:
    """Decompose the trace's TP-matrix and return ``Norm(N_E)``.

    The default solver is the exact row-constant decomposition — for a
    measurement loop we want a deterministic, fast inner metric; the APG
    solver gives indistinguishable ``Norm(N_E)`` at ~100× the cost.
    """
    count = time_step if time_step is not None else trace.n_snapshots
    tp = trace.tp_matrix(nbytes, start=0, count=count)
    return decompose(tp, solver=solver).norm_ne


def _apply_sparse_noise(
    trace: CalibrationTrace,
    amplitude: float,
    density: float,
    rng_seed: int,
) -> CalibrationTrace:
    """One deterministic noise realization at the given amplitude.

    The random *pattern* (which cells, which direction) is fixed by
    ``rng_seed``; only the magnitude scales with ``amplitude``, keeping the
    amplitude → Norm(N_E) map monotone for bisection.
    """
    rng = spawn_rng(rng_seed)
    shape = trace.alpha.shape
    hit = rng.random(shape) < density
    # Compounded ±1% nudges ⇒ symmetric Gaussian log-factors (lognormal
    # multiplicative noise); light tails keep replay means stable.
    magnitude = rng.standard_normal(shape)
    log_factors = np.where(hit, magnitude * amplitude, 0.0)
    factors = np.exp(log_factors)
    return trace.with_multiplicative_noise(factors)


def inject_noise_to_target(
    trace: CalibrationTrace,
    target_norm_ne: float,
    *,
    nbytes: float = 8 * 1024 * 1024,
    density: float = 1.0,
    tolerance: float = 0.01,
    max_bisection_steps: int = 40,
    seed: int | np.random.Generator | None = None,
) -> tuple[CalibrationTrace, float]:
    """Return a noised copy of *trace* whose ``Norm(N_E)`` ≈ *target_norm_ne*.

    Parameters
    ----------
    trace:
        The clean (or baseline) trace.
    target_norm_ne:
        Desired relative error norm in (0, 1). Must be at least the trace's
        intrinsic ``Norm(N_E)`` — noise can only be added, not removed.
    nbytes:
        Message size used for the inner Norm(N_E) measurement.
    density:
        Fraction of (snapshot, link) cells perturbed.
    tolerance:
        Acceptable |achieved − target|.
    max_bisection_steps:
        Bisection budget before giving up with the best iterate.
    seed:
        Drives the (fixed) noise pattern.

    Returns
    -------
    (noised_trace, achieved_norm_ne)
    """
    check_in_range(target_norm_ne, 0.0, 1.0, "target_norm_ne")
    check_probability(density, "density")
    rng = spawn_rng(seed)
    pattern_seed = int(rng.integers(2**31 - 1))

    base = measure_trace_norm_ne(trace, nbytes=nbytes)
    if target_norm_ne < base - tolerance:
        raise ValidationError(
            f"target Norm(N_E)={target_norm_ne:.3f} is below the trace's "
            f"intrinsic value {base:.3f}; noise injection cannot reduce it"
        )
    if abs(base - target_norm_ne) <= tolerance:
        return trace, base

    # Find an upper bracket by doubling the amplitude.
    lo, lo_val = 0.0, base
    hi = 0.1
    for _ in range(30):
        hi_val = measure_trace_norm_ne(
            _apply_sparse_noise(trace, hi, density, pattern_seed), nbytes=nbytes
        )
        if hi_val >= target_norm_ne:
            break
        lo, lo_val = hi, hi_val
        hi *= 2.0
    else:
        raise ValidationError(
            f"could not reach target Norm(N_E)={target_norm_ne:.3f}; "
            f"best achieved {hi_val:.3f} — increase density"
        )

    best_amp, best_val = hi, hi_val
    for _ in range(max_bisection_steps):
        if abs(best_val - target_norm_ne) <= tolerance:
            break
        mid = 0.5 * (lo + hi)
        mid_val = measure_trace_norm_ne(
            _apply_sparse_noise(trace, mid, density, pattern_seed), nbytes=nbytes
        )
        if abs(mid_val - target_norm_ne) < abs(best_val - target_norm_ne):
            best_amp, best_val = mid, mid_val
        if mid_val < target_norm_ne:
            lo, lo_val = mid, mid_val
        else:
            hi, hi_val = mid, mid_val

    noised = _apply_sparse_noise(trace, best_amp, density, pattern_seed)
    return noised, best_val
