"""Generic topology mapping (paper Sec II-C, Hoefler & Snir [19]).

Assign tasks to machines so that heavy task-graph edges land on fast links.
The network-aware algorithm is the greedy heuristic; the Baseline is ring
(identity) mapping. Mapping quality is evaluated against a live (α, β)
snapshot.
"""

from .taskgraph import TaskGraph, random_task_graph, ring_task_graph, stencil_task_graph
from .greedy import greedy_mapping
from .ring import ring_mapping
from .evaluate import mapping_total_time, mapping_bottleneck_time, bandwidth_from_weights

__all__ = [
    "TaskGraph",
    "random_task_graph",
    "ring_task_graph",
    "stencil_task_graph",
    "greedy_mapping",
    "ring_mapping",
    "mapping_total_time",
    "mapping_bottleneck_time",
    "bandwidth_from_weights",
]
