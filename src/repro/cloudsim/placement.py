"""Virtual-machine placement in a simulated datacenter.

A virtual cluster's VMs land on racks of a much larger datacenter. The rack
assignment is what makes pair-wise performance uneven: same-rack pairs get
the fast tier, cross-rack pairs the slow tier. Larger clusters necessarily
span more racks, which is the paper's explanation for why its 196-instance
cluster benefits more from link selection than the 64-instance one (Fig 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..utils.seeding import spawn_rng

__all__ = ["Placement", "place_cluster"]


@dataclass(frozen=True)
class Placement:
    """Rack assignment for the VMs of one virtual cluster.

    Attributes
    ----------
    racks:
        ``racks[i]`` is the datacenter rack hosting VM *i*.
    n_racks_total:
        Number of racks in the datacenter (IDs range over this).
    servers_per_rack:
        Rack capacity; at most this many of the cluster's VMs share a rack.
    """

    racks: np.ndarray
    n_racks_total: int
    servers_per_rack: int

    def __post_init__(self) -> None:
        r = np.asarray(self.racks, dtype=np.intp).copy()
        if r.ndim != 1 or r.size == 0:
            raise ValidationError("racks must be a non-empty 1-D array")
        if r.min() < 0 or r.max() >= int(self.n_racks_total):
            raise ValidationError("rack id out of range")
        counts = np.bincount(r, minlength=int(self.n_racks_total))
        if counts.max() > int(self.servers_per_rack):
            raise ValidationError("rack capacity exceeded")
        r.setflags(write=False)
        object.__setattr__(self, "racks", r)
        object.__setattr__(self, "n_racks_total", int(self.n_racks_total))
        object.__setattr__(self, "servers_per_rack", int(self.servers_per_rack))

    @property
    def n_machines(self) -> int:
        return self.racks.size

    @property
    def n_racks_used(self) -> int:
        return int(np.unique(self.racks).size)

    def same_rack_matrix(self) -> np.ndarray:
        """Boolean N×N matrix: True where two VMs share a rack (diag True)."""
        return self.racks[:, None] == self.racks[None, :]

    def cross_rack_fraction(self) -> float:
        """Fraction of ordered off-diagonal pairs that cross racks."""
        n = self.n_machines
        if n < 2:
            return 0.0
        same = self.same_rack_matrix()
        off = ~np.eye(n, dtype=bool)
        return float(np.count_nonzero(~same & off)) / float(n * (n - 1))


def place_cluster(
    n_machines: int,
    *,
    n_racks_total: int = 1000,
    servers_per_rack: int = 32,
    colocation: float = 0.5,
    seed: int | np.random.Generator | None = None,
) -> Placement:
    """Place *n_machines* VMs on datacenter racks.

    Placement mimics an allocator that prefers partially-used racks: each VM
    joins an already-used rack with probability *colocation* (if capacity
    remains) and otherwise opens a new random rack. ``colocation=0`` spreads
    maximally; ``colocation→1`` packs racks full before opening new ones.

    Parameters
    ----------
    n_machines:
        Cluster size N.
    n_racks_total, servers_per_rack:
        Datacenter geometry; must satisfy ``n_racks_total × servers_per_rack
        ≥ n_machines``.
    colocation:
        Packing preference in [0, 1].
    seed:
        Seed or generator for reproducibility.
    """
    if n_machines < 1:
        raise ValidationError("n_machines must be >= 1")
    if not 0.0 <= colocation <= 1.0:
        raise ValidationError("colocation must lie in [0, 1]")
    if n_racks_total * servers_per_rack < n_machines:
        raise ValidationError("datacenter too small for the requested cluster")
    rng = spawn_rng(seed)
    racks = np.empty(n_machines, dtype=np.intp)
    load: dict[int, int] = {}
    for i in range(n_machines):
        open_racks = [r for r, c in load.items() if c < servers_per_rack]
        if open_racks and rng.random() < colocation:
            r = int(rng.choice(open_racks))
        else:
            # Open a fresh rack; retry on collisions with full racks.
            while True:
                r = int(rng.integers(n_racks_total))
                if load.get(r, 0) < servers_per_rack:
                    break
        racks[i] = r
        load[r] = load.get(r, 0) + 1
    return Placement(
        racks=racks, n_racks_total=n_racks_total, servers_per_rack=servers_per_rack
    )
