"""Update maintenance — paper Algorithm 1 lines 4–9.

After decomposing a calibration into a constant component, the approach
keeps using that component until the *real* performance ``t`` of the guided
operation deviates from the *expected* performance ``t'`` (predicted from the
constant component under the α-β model) by more than a relative threshold:

    |t − t'| / t' ≥ threshold   →   re-calibrate, re-run RPCA.

:class:`MaintenanceController` encapsulates this feedback loop as a pure
state machine: callers report ``(expected, observed)`` pairs and receive a
:class:`MaintenanceDecision`; the controller never performs measurements
itself, so it composes with any substrate (live trace replay, netsim, real
MPI). The paper's default threshold is 100% (Fig 6 shows ≈100% is the sweet
spot: below ~20% the loop thrashes, above ~150% it never re-calibrates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from .._validation import check_nonnegative, check_positive, check_probability
from .detectors import (  # noqa: F401  (re-exported: historical home)
    CusumRegimeDetector,
    RegimeConfig,
    RegimeVerdict,
)

__all__ = [
    "MaintenanceDecision",
    "MaintenanceController",
    "MaintenanceStats",
    "HealthState",
    "HealthTransition",
    "ResilienceConfig",
    "DegradedModeController",
    "RegimeVerdict",
    "RegimeConfig",
    "CusumRegimeDetector",
]


class MaintenanceDecision(Enum):
    """What the controller tells the caller to do next."""

    KEEP = "keep"  # constant component still valid; reuse it
    RECALIBRATE = "recalibrate"  # significant change detected; re-measure


@dataclass
class MaintenanceStats:
    """Running counters over the controller's lifetime."""

    observations: int = 0
    recalibrations: int = 0
    max_relative_deviation: float = 0.0
    deviations: list[float] = field(default_factory=list)


class MaintenanceController:
    """Threshold-based change detector for the constant component.

    Parameters
    ----------
    threshold:
        Relative deviation that counts as a *significant change*; the
        paper's default is 1.0 (i.e. 100%).
    consecutive:
        Number of consecutive above-threshold observations required before
        signalling recalibration. The paper uses 1 (every deviation
        triggers); values > 1 debounce one-off spikes and are used in the
        ablation benches.

    Examples
    --------
    >>> c = MaintenanceController(threshold=1.0)
    >>> c.observe(expected=1.0, observed=1.5)
    <MaintenanceDecision.KEEP: 'keep'>
    >>> c.observe(expected=1.0, observed=2.5)
    <MaintenanceDecision.RECALIBRATE: 'recalibrate'>
    """

    def __init__(self, threshold: float = 1.0, *, consecutive: int = 1) -> None:
        self.threshold = check_positive(threshold, "threshold")
        if int(consecutive) < 1:
            raise ValueError("consecutive must be >= 1")
        self.consecutive = int(consecutive)
        self._streak = 0
        self.stats = MaintenanceStats()

    def relative_deviation(self, expected: float, observed: float) -> float:
        """``|t − t'| / t'`` — the paper's deviation measure."""
        check_positive(expected, "expected")
        check_nonnegative(observed, "observed")
        return abs(observed - expected) / expected

    def observe(self, expected: float, observed: float) -> MaintenanceDecision:
        """Feed one (expected, observed) pair; get the next action.

        A ``RECALIBRATE`` decision resets the internal streak — the caller is
        assumed to re-calibrate before the next observation.
        """
        dev = self.relative_deviation(expected, observed)
        self.stats.observations += 1
        self.stats.deviations.append(dev)
        if dev > self.stats.max_relative_deviation:
            self.stats.max_relative_deviation = dev
        if dev >= self.threshold:
            self._streak += 1
        else:
            self._streak = 0
        if self._streak >= self.consecutive:
            self._streak = 0
            self.stats.recalibrations += 1
            return MaintenanceDecision.RECALIBRATE
        return MaintenanceDecision.KEEP

    def reset(self) -> None:
        """Clear streak state (counters in :attr:`stats` are preserved)."""
        self._streak = 0

    # -- persistence -------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the controller's mutable state."""
        return {
            "streak": self._streak,
            "observations": self.stats.observations,
            "recalibrations": self.stats.recalibrations,
            "max_relative_deviation": self.stats.max_relative_deviation,
            "deviations": list(self.stats.deviations),
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Inverse of :meth:`state_dict` (thresholds come from ``__init__``)."""
        self._streak = int(state["streak"])
        self.stats.observations = int(state["observations"])
        self.stats.recalibrations = int(state["recalibrations"])
        self.stats.max_relative_deviation = float(state["max_relative_deviation"])
        self.stats.deviations = [float(d) for d in state["deviations"]]


class HealthState(Enum):
    """Calibration-plane health of an adaptive session.

    Algorithm 1 assumes re-calibration always succeeds; under injected (or
    real) measurement faults it can fail — too few probes answered, RPCA
    budget exhausted. The session then keeps optimizing on the *last good*
    constant component while retrying with backoff:

    * ``HEALTHY`` — the current constant component comes from a successful,
      sufficiently complete calibration.
    * ``DEGRADED`` — at least one re-calibration attempt failed; the stale
      constant component is still in use and retries are being paced.
    * ``HOLDOVER`` — failures have persisted past the configured limit; the
      session has settled on the stale component (clock-discipline style
      holdover) and retries continue at the maximum backoff.
    """

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    HOLDOVER = "holdover"


@dataclass(frozen=True, slots=True)
class HealthTransition:
    """One edge of the health state machine, for post-hoc inspection."""

    operation: int
    previous: HealthState
    state: HealthState
    reason: str


@dataclass(frozen=True)
class ResilienceConfig:
    """Tunables for fault-tolerant calibration and degraded-mode operation.

    Attributes
    ----------
    max_probe_retries:
        How many times a failed probe is re-attempted within one snapshot
        measurement (transient faults re-roll per attempt).
    retry_backoff_seconds:
        Wall-clock cost charged for the first probe retry wave; each further
        wave doubles it (exponential backoff, accounted as overhead).
    min_snapshot_observed:
        Minimum off-diagonal observed fraction per snapshot for a
        calibration window to be accepted (see
        :class:`~repro.core.engine.DecompositionEngine`).
    min_window_observed:
        Same threshold for the window as a whole.
    recal_backoff_operations:
        Operations to wait after the first failed re-calibration before the
        next attempt.
    recal_backoff_factor:
        Growth factor of the wait after each consecutive failure.
    recal_backoff_max:
        Cap on the wait, in operations.
    holdover_after:
        Consecutive failed re-calibrations before ``DEGRADED`` becomes
        ``HOLDOVER``.
    strict_convergence:
        Ask the solver to raise
        :class:`~repro.errors.ConvergenceError` on budget exhaustion (when
        it supports ``raise_on_fail``) so a non-converged solve is treated
        as a calibration failure instead of silently trusted.
    """

    max_probe_retries: int = 2
    retry_backoff_seconds: float = 0.5
    min_snapshot_observed: float = 0.8
    min_window_observed: float = 0.5
    recal_backoff_operations: int = 1
    recal_backoff_factor: float = 2.0
    recal_backoff_max: int = 8
    holdover_after: int = 3
    strict_convergence: bool = True

    def __post_init__(self) -> None:
        if int(self.max_probe_retries) < 0:
            raise ValueError("max_probe_retries must be >= 0")
        check_nonnegative(self.retry_backoff_seconds, "retry_backoff_seconds")
        check_probability(self.min_snapshot_observed, "min_snapshot_observed")
        check_probability(self.min_window_observed, "min_window_observed")
        if int(self.recal_backoff_operations) < 0:
            raise ValueError("recal_backoff_operations must be >= 0")
        if float(self.recal_backoff_factor) < 1.0:
            raise ValueError("recal_backoff_factor must be >= 1")
        if int(self.recal_backoff_max) < int(self.recal_backoff_operations):
            raise ValueError("recal_backoff_max must be >= recal_backoff_operations")
        if int(self.holdover_after) < 1:
            raise ValueError("holdover_after must be >= 1")

    def backoff_operations(self, failures: int) -> int:
        """Operations to wait after the *failures*-th consecutive failure."""
        if failures <= 0:
            return 0
        wait = float(self.recal_backoff_operations) * (
            float(self.recal_backoff_factor) ** (failures - 1)
        )
        return int(min(wait, float(self.recal_backoff_max)))


class DegradedModeController:
    """HEALTHY → DEGRADED → HOLDOVER state machine over calibration outcomes.

    The session reports each re-calibration attempt's outcome and ticks the
    controller once per executed operation; the controller paces retry
    attempts (exponential backoff measured in operations) and accounts for
    staleness — how many operations have run on the current constant
    component since it was last refreshed.
    """

    def __init__(self, config: ResilienceConfig | None = None) -> None:
        self.config = config if config is not None else ResilienceConfig()
        self.state = HealthState.HEALTHY
        self.consecutive_failures = 0
        self.staleness = 0  # operations since the last successful calibration
        self.max_staleness = 0
        self._cooldown = 0  # operations until the next retry is allowed
        self.transitions: list[HealthTransition] = []
        self._operation = 0

    @property
    def healthy(self) -> bool:
        return self.state is HealthState.HEALTHY

    def tick(self) -> None:
        """Advance by one executed operation (staleness + backoff clocks)."""
        self._operation += 1
        self.staleness += 1
        if self.staleness > self.max_staleness:
            self.max_staleness = self.staleness
        if self._cooldown > 0:
            self._cooldown -= 1

    def should_attempt(self) -> bool:
        """Whether a re-calibration attempt is allowed right now."""
        return self._cooldown == 0

    def _transition(self, state: HealthState, reason: str) -> None:
        if state is not self.state:
            self.transitions.append(
                HealthTransition(
                    operation=self._operation,
                    previous=self.state,
                    state=state,
                    reason=reason,
                )
            )
            self.state = state

    def record_success(self) -> None:
        """A calibration succeeded: back to HEALTHY, clocks reset."""
        self.consecutive_failures = 0
        self._cooldown = 0
        self.staleness = 0
        self._transition(HealthState.HEALTHY, "calibration succeeded")

    def record_failure(self, error: BaseException | str) -> None:
        """A calibration attempt failed: degrade and push out the next retry."""
        self.consecutive_failures += 1
        self._cooldown = self.config.backoff_operations(self.consecutive_failures)
        target = (
            HealthState.HOLDOVER
            if self.consecutive_failures >= self.config.holdover_after
            else HealthState.DEGRADED
        )
        self._transition(target, str(error))

    # -- persistence -------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the health machine's mutable state."""
        return {
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "staleness": self.staleness,
            "max_staleness": self.max_staleness,
            "cooldown": self._cooldown,
            "operation": self._operation,
            "transitions": [
                {
                    "operation": t.operation,
                    "previous": t.previous.value,
                    "state": t.state.value,
                    "reason": t.reason,
                }
                for t in self.transitions
            ],
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Inverse of :meth:`state_dict` (config comes from ``__init__``)."""
        self.state = HealthState(state["state"])
        self.consecutive_failures = int(state["consecutive_failures"])
        self.staleness = int(state["staleness"])
        self.max_staleness = int(state["max_staleness"])
        self._cooldown = int(state["cooldown"])
        self._operation = int(state["operation"])
        self.transitions = [
            HealthTransition(
                operation=int(t["operation"]),
                previous=HealthState(t["previous"]),
                state=HealthState(t["state"]),
                reason=str(t["reason"]),
            )
            for t in state["transitions"]
        ]
