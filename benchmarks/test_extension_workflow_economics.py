"""Extensions bench — scientific workflows and monetary cost (paper Sec VI).

The paper's future work: evaluate the approach on scientific workflows and
study its economic impact. This bench maps a Montage-shaped workflow onto an
EC2-like cluster with each strategy, replays the makespans, and prices the
runs under 2013 hourly billing and modern per-second billing.
"""

import numpy as np

from repro.apps.workflow import montage_like_workflow, workflow_makespan
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.economics.pricing import BillingGranularity, InstancePricing
from repro.economics.savings import savings_report
from repro.experiments.harness import ReplayContext
from repro.experiments.report import format_table
from repro.mapping.evaluate import bandwidth_from_weights
from repro.mapping.greedy import greedy_mapping
from repro.mapping.ring import ring_mapping
from repro.strategies import BaselineStrategy, HeuristicStrategy, RPCAStrategy

MB = 1024 * 1024


def run_workflow_comparison():
    n = 24
    trace = generate_trace(TraceConfig(n_machines=n, n_snapshots=30), seed=44)
    ctx = ReplayContext(trace=trace, time_step=10)
    arms = [
        BaselineStrategy(),
        HeuristicStrategy("mean"),
        RPCAStrategy("apg", time_step=10),
    ]
    ctx.fit(arms)
    # Heavy tiles + light stage computation make the workflow communication-
    # bound, like the paper's network-bound applications.
    wf = montage_like_workflow(
        width=10, tile_bytes=400 * MB, seed=2,
        project_seconds=2.0, overlap_seconds=1.0, combine_seconds=5.0,
    )
    g, order = wf.task_graph()

    makespans: dict[str, list[float]] = {a.name: [] for a in arms}
    for rep in range(20):
        k = ctx.eval_snapshot(rep)
        alpha, beta = trace.alpha[k], trace.beta[k]
        for a in arms:
            if a.mapping_algorithm == "ring":
                assignment = ring_mapping(len(order), n, offset=rep)
            else:
                w = a.weight_matrix()
                assignment = greedy_mapping(g, bandwidth_from_weights(w))
            makespans[a.name].append(workflow_makespan(wf, assignment, alpha, beta))
    return {name: float(np.mean(v)) for name, v in makespans.items()}, n


def test_extension_workflow_and_economics(benchmark, emit):
    means, n = benchmark.pedantic(run_workflow_comparison, rounds=1, iterations=1)

    emit(
        format_table(
            ["strategy", "mean workflow makespan (s)", "normalized"],
            [(k, v, v / means["Baseline"]) for k, v in means.items()],
            title="Extension: Montage-like workflow mapping, 24 VMs",
        )
    )

    # Network-aware mapping shortens the workflow.
    assert means["RPCA"] < means["Baseline"]

    # Economics: amortize over a campaign of 50 workflow runs so the time
    # gain crosses billing quanta; compare billing models.
    from repro.calibration.overhead import calibration_overhead_seconds

    campaign = 50
    overhead = calibration_overhead_seconds(n, 10)  # one calibration, Fig 4 model
    rows = []
    for granularity in (BillingGranularity.HOURLY, BillingGranularity.PER_SECOND):
        pricing = InstancePricing(granularity=granularity)
        rep = savings_report(
            strategy="RPCA",
            baseline_elapsed_seconds=means["Baseline"] * campaign,
            strategy_elapsed_seconds=means["RPCA"] * campaign,
            strategy_overhead_seconds=overhead,
            n_instances=n,
            pricing=pricing,
        )
        rows.append(
            (granularity.value, rep.baseline_cost, rep.strategy_cost,
             rep.savings, f"{rep.savings_fraction:.1%}")
        )
    emit(
        format_table(
            ["billing", "baseline $", "RPCA $", "savings $", "savings %"],
            rows,
            title=f"Extension: cost of a {campaign}-run campaign at 2013 pricing",
        )
    )
    # Per-second billing always monetizes the gain.
    per_second = rows[1]
    assert per_second[3] > 0.0
