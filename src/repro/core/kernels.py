"""Low-rank-aware SVD kernel layer for the RPCA solvers.

The solvers spend nearly all their time inside singular value thresholding
(SVT) of an ``n_snapshots × N²`` iterate whose effective rank is tiny — the
TC-matrix target is rank one — yet the historical implementation paid a full
LAPACK ``gesdd`` thin SVD every iteration. This module makes the SVD under
:func:`~repro.core.svd_ops.singular_value_threshold` pluggable:

``exact``
    The historical ``gesdd``/``gesvd`` path, bit-identical to
    :func:`~repro.core.svd_ops.singular_value_threshold`. The default.
``gram``
    Exploits the extreme aspect ratio of TP-matrices (``m ≈ 10`` rows vs
    ``n ≈ 38416`` columns): eigendecompose the tiny ``A·Aᵀ`` Gram matrix
    (``m × m``) and reconstruct only the triplets that survive the
    threshold. Exact up to the squared-condition-number loss of forming the
    Gram matrix — singular values below ``σ₁·√ε ≈ σ₁·1.5e-8`` are noise,
    far below any RPCA threshold in practice.
``randomized``
    Halko–Martinsson–Tropp range finder with power iterations, computing
    only the top-``k`` triplets. For matrices whose *both* sides are too
    large for the Gram trick. Deterministic: the test matrix is drawn from
    a fixed-seed generator per kernel.
``auto``
    Picks per call: ``gram`` when the short side is small enough that the
    Gram eigendecomposition is trivial, ``randomized`` when the predicted
    rank is far below the short side, ``exact`` otherwise.

Rank prediction follows the partial-SVD heuristic of the reference IALM
implementation (Lin, Chen & Ma 2010): start at ``min(10, m)``, then
grow/shrink from how many singular values survived the previous threshold,
so steady-state iterations compute ~``rank+1`` triplets instead of
``min(m, n)``. :class:`RankPredictor` carries that state; the
:class:`~repro.core.engine.DecompositionEngine` threads one predictor
through successive warm-started re-calibrations so the steady-state rank is
remembered across solves (and across processes — the predictor pickles with
the engine's warm state).

Partial backends can *undershoot*: a sketch of ``k`` triplets cannot prove
that triplet ``k+1`` would not also survive the threshold. Both partial
backends therefore verify that the smallest computed singular value fell
below the threshold and regrow the sketch otherwise, so the returned rank
always equals the exact thresholded rank.

:class:`SolveWorkspace` rounds out the layer: a per-solve pool of
preallocated ``m × n`` buffers the solver iterations write into (``out=``
style), so steady-state iterations allocate no new ``m × n`` temporaries.
Every allocation is counted (``kernel.workspace.alloc_mn``), which is how
the no-allocation property is asserted in tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import observability
from ..errors import ValidationError
from .svd_ops import singular_value_threshold, truncated_svd

__all__ = [
    "SVD_BACKENDS",
    "RankPredictor",
    "BatchRankPredictor",
    "SVTKernel",
    "BatchedSVTKernel",
    "SolveWorkspace",
    "validate_backend",
]

SVD_BACKENDS = ("exact", "gram", "randomized", "auto")

# `auto` policy thresholds. The Gram trick is preferred whenever the short
# side is small enough that an m×m eigendecomposition is trivially cheap
# (the paper's TP-matrices have m ≈ 10); the randomized sketch needs the
# predicted rank well below the short side to beat gesdd.
_GRAM_MAX_SIDE = 64
_RANDOMIZED_MARGIN = 4


def validate_backend(backend: str) -> str:
    """Return *backend* if it names a known SVD backend, else raise."""
    if backend not in SVD_BACKENDS:
        raise ValidationError(
            f"unknown SVD backend {backend!r}; available: {list(SVD_BACKENDS)}"
        )
    return backend


@dataclass
class RankPredictor:
    """Adaptive rank prediction for partial SVT (the ``sv`` heuristic).

    Attributes
    ----------
    min_dim:
        Short side of the matrices being thresholded; the prediction is
        clamped to it.
    sv:
        Current prediction: how many triplets the next partial SVT should
        compute. Starts at ``min(10, min_dim)`` (Lin et al.'s choice).
    growth:
        Fractional headroom added when the previous threshold kept every
        computed triplet (rank still growing).

    The invariant :meth:`observe` maintains — pinned by a property test —
    is that the next prediction always *exceeds* the rank that survived the
    last threshold (unless clamped at ``min_dim``), so a steady-state
    iteration computes ``rank + 1`` triplets: enough to see the first
    singular value that falls below the threshold and thereby prove the
    rank exact.
    """

    min_dim: int
    sv: int = 0
    growth: float = 0.05
    observations: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if int(self.min_dim) < 1:
            raise ValidationError("min_dim must be >= 1")
        self.min_dim = int(self.min_dim)
        if self.sv <= 0:
            self.sv = min(10, self.min_dim)
        self.sv = int(min(self.sv, self.min_dim))

    @classmethod
    def for_shape(cls, shape: tuple[int, int]) -> "RankPredictor":
        """A fresh predictor for matrices of *shape*."""
        return cls(min_dim=min(int(shape[0]), int(shape[1])))

    def predict(self) -> int:
        """Triplets the next partial SVT should compute."""
        return self.sv

    def observe(self, surviving: int) -> None:
        """Update the prediction from how many singular values survived."""
        surviving = int(surviving)
        if surviving < self.sv:
            self.sv = min(surviving + 1, self.min_dim)
        else:
            step = max(1, round(self.growth * self.min_dim))
            self.sv = min(surviving + step, self.min_dim)
        self.observations += 1


@dataclass
class BatchRankPredictor:
    """:class:`RankPredictor` over a batch axis.

    One prediction slot per matrix in a stacked solve. :meth:`observe`
    applies the scalar predictor's update rule elementwise — including its
    no-undershoot invariant (the next prediction exceeds the surviving rank
    unless clamped at ``min_dim``), pinned per-slot by a property test.
    Because the batched solver compacts converged matrices out of its
    stack, observations may arrive for a *subset* of slots: ``slots`` maps
    each observed value back to its original batch position.
    """

    min_dim: int
    batch: int
    growth: float = 0.05
    sv: np.ndarray | None = None
    observations: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if int(self.min_dim) < 1:
            raise ValidationError("min_dim must be >= 1")
        if int(self.batch) < 1:
            raise ValidationError("batch must be >= 1")
        self.min_dim = int(self.min_dim)
        self.batch = int(self.batch)
        if self.sv is None:
            self.sv = np.full(self.batch, min(10, self.min_dim), dtype=np.int64)
        else:
            self.sv = np.minimum(
                np.asarray(self.sv, dtype=np.int64), self.min_dim
            ).copy()
            if self.sv.shape != (self.batch,):
                raise ValidationError(
                    f"sv must have shape ({self.batch},), got {self.sv.shape}"
                )

    @classmethod
    def for_stack(cls, shape: tuple[int, int, int]) -> "BatchRankPredictor":
        """A fresh predictor for a ``(B, m, n)`` stack."""
        b, m, n = (int(s) for s in shape)
        return cls(min_dim=min(m, n), batch=b)

    def predict(self) -> np.ndarray:
        """Per-slot triplet predictions (a copy; mutate via :meth:`observe`)."""
        return self.sv.copy()

    def observe(
        self, surviving: np.ndarray, slots: np.ndarray | None = None
    ) -> None:
        """Update predictions from per-matrix surviving ranks.

        *slots* selects which batch positions the values belong to
        (default: positions ``0..len(surviving)``, the uncompacted case).
        """
        surviving = np.asarray(surviving, dtype=np.int64)
        idx = np.arange(surviving.size) if slots is None else np.asarray(slots)
        sv = self.sv[idx]
        step = max(1, round(self.growth * self.min_dim))
        self.sv[idx] = np.where(
            surviving < sv,
            np.minimum(surviving + 1, self.min_dim),
            np.minimum(surviving + step, self.min_dim),
        )
        self.observations += 1


class SolveWorkspace:
    """Preallocated per-solve ``m × n`` buffers, handed out by name.

    A solver asks for its iteration buffers once, before the loop; every
    subsequent iteration reuses them through ``out=`` ufunc calls. Each
    fresh allocation emits a ``kernel.workspace.alloc_mn`` count into the
    active instrumentation sinks, so "steady-state iterations allocate no
    new m×n temporaries" is a counter assertion, not a code-review claim.
    """

    __slots__ = ("shape", "_bufs")

    def __init__(self, shape: tuple[int, int]) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self._bufs: dict[str, np.ndarray] = {}

    def buf(self, name: str) -> np.ndarray:
        """The buffer registered under *name* (allocated on first use)."""
        arr = self._bufs.get(name)
        if arr is None:
            arr = np.empty(self.shape, dtype=np.float64)
            self._bufs[name] = arr
            observability.emit_count("kernel.workspace.alloc_mn")
        return arr

    def bufs(self, *names: str) -> tuple[np.ndarray, ...]:
        """Several buffers at once, in the order requested."""
        return tuple(self.buf(name) for name in names)

    @property
    def allocated(self) -> int:
        """Number of ``m × n`` buffers allocated so far."""
        return len(self._bufs)


class SVTKernel:
    """Singular value thresholding with a pluggable partial-SVD backend.

    One kernel serves one solve: it owns the small scratch state (the Gram
    buffer, the sketch generator) and the :class:`RankPredictor` threading
    through the iterations. :meth:`svt` matches the contract of
    :func:`~repro.core.svd_ops.singular_value_threshold` — ``(D, rank,
    top_sv)`` — plus an optional preallocated output buffer.

    Parameters
    ----------
    shape:
        Shape of the matrices this kernel will threshold.
    backend:
        One of :data:`SVD_BACKENDS`. ``auto`` re-decides per call from the
        current rank prediction.
    rank_predictor:
        Shared predictor state; a fresh one is created if omitted. Pass the
        previous solve's predictor to start warm.
    oversample:
        Extra sketch columns for the ``randomized`` backend (Halko et al.
        recommend 5–10).
    power_iters:
        Power (subspace) iterations for the ``randomized`` backend; 2 is
        enough for the sharply decaying spectra RPCA iterates have.
    seed:
        Seed of the sketch generator — the randomized backend is
        deterministic for a given kernel.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        backend: str = "auto",
        *,
        rank_predictor: RankPredictor | None = None,
        oversample: int = 8,
        power_iters: int = 2,
        seed: int = 0,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.backend = validate_backend(backend)
        self.min_dim = min(self.shape)
        if rank_predictor is None:
            rank_predictor = RankPredictor.for_shape(self.shape)
        elif rank_predictor.min_dim != self.min_dim:
            raise ValidationError(
                f"rank predictor built for min_dim={rank_predictor.min_dim}, "
                f"kernel shape {self.shape} has min_dim={self.min_dim}"
            )
        self.predictor = rank_predictor
        self.oversample = max(1, int(oversample))
        self.power_iters = max(0, int(power_iters))
        self._rng = np.random.default_rng(seed)
        self._gram: np.ndarray | None = None  # min_dim × min_dim scratch

    # -- policy -------------------------------------------------------------
    def choose(self) -> str:
        """The concrete backend the next :meth:`svt` call will use."""
        if self.backend != "auto":
            return self.backend
        if self.min_dim <= _GRAM_MAX_SIDE:
            return "gram"
        if self.predictor.predict() * _RANDOMIZED_MARGIN < self.min_dim:
            return "randomized"
        return "exact"

    # -- dispatch -----------------------------------------------------------
    def svt(
        self, a: np.ndarray, tau: float, out: np.ndarray | None = None
    ) -> tuple[np.ndarray, int, float]:
        """``D_tau(a)`` — see :func:`~repro.core.svd_ops.singular_value_threshold`.

        When *out* is given the thresholded matrix is written into it (and
        returned); otherwise a fresh array is allocated.
        """
        backend = self.choose()
        start = time.perf_counter()
        if backend == "exact":
            d, rank, top = self._svt_exact(a, tau, out)
        elif backend == "gram":
            d, rank, top = self._svt_gram(a, tau, out)
        else:
            d, rank, top = self._svt_randomized(a, tau, out)
        elapsed = time.perf_counter() - start
        self.predictor.observe(rank)
        observability.emit_count(f"kernel.svt.{backend}")
        if backend == "exact":
            observability.emit_count("kernel.svt.full_width")
        observability.emit_time("kernel.svt_seconds", elapsed)
        observability.emit_time(f"kernel.svt.{backend}_seconds", elapsed)
        return d, rank, top

    # -- backends -----------------------------------------------------------
    def _svt_exact(
        self, a: np.ndarray, tau: float, out: np.ndarray | None
    ) -> tuple[np.ndarray, int, float]:
        """The historical full-width path (bit-identical to ``svd_ops``)."""
        d, rank, top = singular_value_threshold(a, tau)
        if out is not None:
            np.copyto(out, d)
            return out, rank, top
        return d, rank, top

    def _gram_buf(self) -> np.ndarray:
        if self._gram is None:
            self._gram = np.empty((self.min_dim, self.min_dim), dtype=np.float64)
        return self._gram

    def _svt_gram(
        self, a: np.ndarray, tau: float, out: np.ndarray | None
    ) -> tuple[np.ndarray, int, float]:
        """Eigendecompose the short-side Gram matrix; reconstruct survivors.

        For a wide matrix (``m ≤ n``): ``A·Aᵀ = U·diag(s²)·Uᵀ``, so the
        left singular vectors and singular values come from an ``m × m``
        symmetric eigenproblem and only the ``rank`` surviving right
        vectors ``vᵢᵀ = uᵢᵀA / sᵢ`` are ever formed. Tall matrices use the
        transposed identity. All ``min_dim`` singular values are available,
        so the thresholded rank is exact by construction — no undershoot.
        """
        m, n = a.shape
        wide = m <= n
        gram = self._gram_buf()
        if wide:
            np.matmul(a, a.T, out=gram)
        else:
            np.matmul(a.T, a, out=gram)
        w, vecs = np.linalg.eigh(gram)  # ascending
        s = np.sqrt(np.clip(w[::-1], 0.0, None))
        top = float(s[0]) if s.size else 0.0
        shrunk = s - tau
        rank = int(np.count_nonzero(shrunk > 0.0))
        if out is None:
            out = np.empty_like(np.asarray(a, dtype=np.float64))
        if rank == 0:
            out[:] = 0.0
            return out, 0, top
        basis = vecs[:, ::-1][:, :rank]  # top-`rank` eigenvectors
        if wide:
            # D = (U_k * shrunk) @ (U_kᵀ A / s_k)
            vt = (basis.T @ a) / s[:rank, None]
            np.matmul(basis * shrunk[:rank], vt, out=out)
        else:
            # D = (A V_k / s_k * shrunk) @ V_kᵀ
            u = (a @ basis) / s[:rank]
            np.matmul(u * shrunk[:rank], basis.T, out=out)
        return out, rank, top

    def _svt_randomized(
        self, a: np.ndarray, tau: float, out: np.ndarray | None
    ) -> tuple[np.ndarray, int, float]:
        """Range-finder partial SVD of the predicted top-``k`` triplets.

        The sketch starts at ``predictor.predict() + oversample`` columns
        and *regrows* (doubling) whenever every computed singular value
        survived the threshold — a sketch that small cannot prove the rank,
        so returning it would undershoot. At ``k = min_dim`` the sketch is
        a full decomposition and the answer is exact.
        """
        m, n = a.shape
        wide = m <= n
        work = a if wide else a.T
        k = self.predictor.predict()
        while True:
            sketch = min(self.min_dim, k + self.oversample)
            if sketch >= self.min_dim:
                # Full-width fallback: the sketch would not be partial.
                u, s, vt = truncated_svd(a)
                break
            omega = self._rng.standard_normal((work.shape[1], sketch))
            y = work @ omega
            q, _ = np.linalg.qr(y)
            for _ in range(self.power_iters):
                q, _ = np.linalg.qr(work.T @ q)
                q, _ = np.linalg.qr(work @ q)
            b = q.T @ work
            ub, s, vt_b = truncated_svd(b)
            if s.size and s[-1] - tau > 0.0:
                # Every computed value survived: cannot certify the rank.
                observability.emit_count("kernel.svt.regrow")
                k = min(self.min_dim, max(k * 2, k + 1))
                continue
            u_small = q @ ub
            if wide:
                u, vt = u_small, vt_b
            else:
                u, vt = vt_b.T, u_small.T
            break
        top = float(s[0]) if s.size else 0.0
        shrunk = s - tau
        rank = int(np.count_nonzero(shrunk > 0.0))
        if out is None:
            out = np.empty_like(np.asarray(a, dtype=np.float64))
        if rank == 0:
            out[:] = 0.0
            return out, 0, top
        np.matmul(u[:, :rank] * shrunk[:rank], vt[:rank], out=out)
        return out, rank, top


class BatchedSVTKernel:
    """Stacked singular value thresholding via short-side Gram eigenproblems.

    The batched counterpart of :class:`SVTKernel`'s ``gram`` backend: one
    batched ``A·Aᵀ`` GEMM over the stack, one stacked ``m × m``
    :func:`numpy.linalg.eigh`, then a cheap per-slice reconstruction of the
    surviving triplets. The per-slice arithmetic mirrors
    :meth:`SVTKernel._svt_gram` operation for operation — batched GEMM and
    stacked ``eigh`` process slices independently — so slice ``b`` of the
    output is bit-identical to the single-matrix gram kernel applied to
    slice ``b``, regardless of what else is in the batch. That invariance
    is what lets the batched solvers drop converged matrices out of the
    stack (and the fleet shard clusters arbitrarily) without perturbing any
    remaining solve; it is pinned by tests/test_core_batch.py.

    Only short sides up to the ``auto`` policy's gram threshold are
    supported — larger problems stay on the per-matrix kernels (the
    batched entry points fall back per matrix rather than construct this).

    Parameters
    ----------
    shape:
        ``(B, m, n)`` of the largest stack this kernel will threshold;
        calls may pass any leading slice of it (the active sub-batch).
    rank_predictor:
        Shared :class:`BatchRankPredictor`; a fresh one is created if
        omitted. The gram path computes all ``min_dim`` singular values, so
        the predictor is observational here (it seeds any later
        per-matrix partial solve warm).
    dtype:
        Element type of the stacks (``float32`` iterate mode uses a
        float32 kernel; the refinement pass a float64 one).
    """

    def __init__(
        self,
        shape: tuple[int, int, int],
        *,
        rank_predictor: BatchRankPredictor | None = None,
        dtype: np.dtype | str = np.float64,
    ) -> None:
        b, m, n = (int(s) for s in shape)
        self.shape = (b, m, n)
        self.min_dim = min(m, n)
        self.wide = m <= n
        if self.min_dim > _GRAM_MAX_SIDE:
            raise ValidationError(
                f"batched SVT is gram-only: short side {self.min_dim} exceeds "
                f"{_GRAM_MAX_SIDE}; use the per-matrix kernels"
            )
        self.dtype = np.dtype(dtype)
        if rank_predictor is None:
            rank_predictor = BatchRankPredictor(min_dim=self.min_dim, batch=b)
        elif rank_predictor.min_dim != self.min_dim:
            raise ValidationError(
                f"rank predictor built for min_dim={rank_predictor.min_dim}, "
                f"kernel stack {self.shape} has min_dim={self.min_dim}"
            )
        self.predictor = rank_predictor
        self._gram: np.ndarray | None = None  # (B, min_dim, min_dim) scratch

    def _gram_buf(self) -> np.ndarray:
        if self._gram is None:
            self._gram = np.empty(
                (self.shape[0], self.min_dim, self.min_dim), dtype=self.dtype
            )
        return self._gram

    def svt(
        self,
        a: np.ndarray,
        tau: float | np.ndarray,
        out: np.ndarray,
        slots: np.ndarray | None = None,
    ) -> np.ndarray:
        """Threshold every slice of ``a`` into *out*; returns per-slice ranks.

        *a*/*out* are ``(k, m, n)`` with ``k ≤ B`` (the active sub-batch);
        *tau* is a scalar or a ``(k, 1, 1)`` per-matrix threshold; *slots*
        maps active positions to original batch slots for the predictor.
        """
        k = a.shape[0]
        start = time.perf_counter()
        gram = self._gram_buf()[:k]
        if self.wide:
            np.matmul(a, a.transpose(0, 2, 1), out=gram)
        else:
            np.matmul(a.transpose(0, 2, 1), a, out=gram)
        w, vecs = np.linalg.eigh(gram)  # ascending, per slice
        taus = np.ravel(tau)
        ranks = np.empty(k, dtype=np.int64)
        for i in range(k):
            tau_i = float(taus[i]) if taus.size > 1 else float(taus[0])
            s = np.sqrt(np.clip(w[i, ::-1], 0.0, None))
            shrunk = s - tau_i
            rank = int(np.count_nonzero(shrunk > 0.0))
            ranks[i] = rank
            if rank == 0:
                out[i] = 0.0
                continue
            basis = vecs[i][:, ::-1][:, :rank]  # top-`rank` eigenvectors
            if self.wide:
                # D = (U_k * shrunk) @ (U_kᵀ A / s_k)
                vt = (basis.T @ a[i]) / s[:rank, None]
                np.matmul(basis * shrunk[:rank], vt, out=out[i])
            else:
                # D = (A V_k / s_k * shrunk) @ V_kᵀ
                u = (a[i] @ basis) / s[:rank]
                np.matmul(u * shrunk[:rank], basis.T, out=out[i])
        elapsed = time.perf_counter() - start
        self.predictor.observe(ranks, slots=slots)
        observability.emit_count("kernel.batch.svt.gram")
        observability.emit_count("kernel.batch.svt.slices", k)
        observability.emit_time("kernel.batch.svt_seconds", elapsed)
        return ranks
