"""Crash recovery: newest valid checkpoint + journal replay past it.

:func:`recover` is the read side of the persistence protocol:

1. Walk the checkpoint store newest → oldest; the first file that passes
   magic/version/CRC/schema verification wins. Corrupt or half-written
   checkpoints are skipped — that is the fallback the atomic-rename writer
   and the retention window exist for.
2. Scan the journal (torn tail amputated by construction) and keep the
   records *past* the chosen checkpoint's ``journal_seq`` — operations the
   dead process had committed to but that are newer than the checkpoint.
3. Hand both to the caller (:meth:`TraceSession.resume`), which re-executes
   the tail records deterministically from the checkpointed state.

Because the journal is never truncated during a session, falling back to an
*older* checkpoint simply replays a longer tail — corruption costs replay
time, never state.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import CheckpointCorruption, PersistenceError
from .checkpoint import CheckpointStore, read_checkpoint
from .journal import SnapshotJournal
from .state import check_schema

__all__ = ["JOURNAL_NAME", "RecoveredState", "recover"]

JOURNAL_NAME = "session.journal"


@dataclass(frozen=True)
class RecoveredState:
    """Everything :func:`recover` pulled off disk.

    ``pending`` holds the journal records newer than the checkpoint, in
    commit order — the operations to re-execute. ``fallbacks`` counts how
    many newer checkpoints had to be skipped as corrupt (0 on the happy
    path); ``discarded_tail_bytes`` is the size of the torn journal tail.
    """

    arrays: dict[str, np.ndarray]
    meta: dict[str, Any]
    checkpoint_path: str
    pending: tuple[dict[str, Any], ...]
    fallbacks: int
    discarded_tail_bytes: int


def journal_path(directory: str | os.PathLike) -> str:
    return os.path.join(os.fspath(directory), JOURNAL_NAME)


def recover(directory: str | os.PathLike) -> RecoveredState:
    """Load the newest recoverable session state from *directory*.

    Raises
    ------
    PersistenceError
        When the directory holds no checkpoint that passes verification.
    """
    directory = os.fspath(directory)
    if not os.path.isdir(directory):
        raise PersistenceError(f"no persistence directory at {directory!r}")
    store = CheckpointStore(directory)
    fallbacks = 0
    chosen = None
    for _, path in reversed(store._paths()):
        try:
            ckpt = read_checkpoint(path)
            check_schema(ckpt.meta, path)
            chosen = ckpt
            break
        except (CheckpointCorruption, OSError):
            fallbacks += 1
            continue
    if chosen is None:
        raise PersistenceError(
            f"no valid checkpoint in {directory!r} "
            f"({fallbacks} file(s) failed verification)"
        )
    jpath = journal_path(directory)
    pending: tuple[dict[str, Any], ...] = ()
    discarded = 0
    if os.path.exists(jpath):
        scan = SnapshotJournal.scan(jpath)
        discarded = scan.discarded_bytes
        seq = int(chosen.meta["journal_seq"])
        pending = tuple(
            json.loads(p.decode("utf-8")) for p in scan.records[seq:]
        )
    return RecoveredState(
        arrays=chosen.arrays,
        meta=chosen.meta,
        checkpoint_path=chosen.path,
        pending=pending,
        fallbacks=fallbacks,
        discarded_tail_bytes=discarded,
    )
