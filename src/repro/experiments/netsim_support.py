"""Shared plumbing for the simulation experiments (Figs 12–13).

Builds a datacenter simulation with Poisson background traffic, selects a
virtual cluster, runs in-simulation ping-pong calibrations and packages the
measurements as a :class:`~repro.cloudsim.trace.CalibrationTrace` — after
which every replay tool of the EC2 pipeline applies unchanged to the
simulated cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..calibration.calibrator import Calibrator
from ..cloudsim.placement import Placement
from ..cloudsim.trace import CalibrationTrace
from ..errors import ValidationError
from ..netsim.background import BackgroundConfig, BackgroundTraffic
from ..netsim.probe import NetsimSubstrate
from ..netsim.simulator import FlowSimulator
from ..netsim.topology import TreeTopology
from ..utils.seeding import derive_seed, spawn_rng

__all__ = ["NetsimScenario", "build_scenario", "calibrate_netsim_trace"]


@dataclass
class NetsimScenario:
    """A live simulation plus the virtual cluster under test."""

    topology: TreeTopology
    sim: FlowSimulator
    background: BackgroundTraffic
    machines: list[int]

    @property
    def n_machines(self) -> int:
        return len(self.machines)

    def placement(self) -> Placement:
        """The cluster's ground-truth rack placement (for Topology-aware)."""
        racks = np.array(
            [self.topology.rack_of(m) for m in self.machines], dtype=np.intp
        )
        return Placement(
            racks=racks,
            n_racks_total=self.topology.n_racks,
            servers_per_rack=self.topology.servers_per_rack,
        )


def build_scenario(
    *,
    n_racks: int = 32,
    servers_per_rack: int = 32,
    cluster_size: int = 32,
    background: BackgroundConfig | None = None,
    warmup_seconds: float = 30.0,
    rack_bandwidth: float | None = None,
    core_bandwidth: float | None = None,
    seed: int = 0,
) -> NetsimScenario:
    """Stand up the datacenter, start background traffic, pick the cluster.

    Cluster machines are sampled uniformly from the datacenter ("machines
    are randomly selected from the simulated cluster", Sec V-E), and the
    background is warmed up so calibrations see steady-state contention.

    The paper's geometry (32 servers × 1 Gb/s behind a 10 Gb/s uplink) is
    3.2:1 oversubscribed, which is what lets background traffic congest
    uplinks persistently. Downscaled test datacenters should pass a
    *core_bandwidth* that preserves that ratio (e.g. 2.5 Gb/s for 8-server
    racks) or uplink contention becomes impossible.
    """
    kwargs = {}
    if rack_bandwidth is not None:
        kwargs["rack_bandwidth"] = rack_bandwidth
    if core_bandwidth is not None:
        kwargs["core_bandwidth"] = core_bandwidth
    topo = TreeTopology(n_racks=n_racks, servers_per_rack=servers_per_rack, **kwargs)
    if cluster_size > topo.n_machines:
        raise ValidationError("cluster larger than the datacenter")
    rng = spawn_rng(derive_seed(seed, "scenario"))
    machines = sorted(
        int(m) for m in rng.choice(topo.n_machines, size=cluster_size, replace=False)
    )
    sim = FlowSimulator(topo)
    bg = BackgroundTraffic(
        sim,
        background if background is not None else BackgroundConfig(),
        seed=derive_seed(seed, "background"),
    )
    bg.start()
    sim.run_until(warmup_seconds)
    return NetsimScenario(topology=topo, sim=sim, background=bg, machines=machines)


def calibrate_netsim_trace(
    scenario: NetsimScenario,
    *,
    n_snapshots: int = 10,
    gap_seconds: float = 30.0,
    probe_bytes: float = 8.0 * 1024 * 1024,
) -> CalibrationTrace:
    """Run *n_snapshots* in-simulation calibrations spaced *gap_seconds* apart."""
    if n_snapshots < 1:
        raise ValidationError("n_snapshots must be >= 1")
    substrate = NetsimSubstrate(
        scenario.sim, scenario.machines, probe_bytes=probe_bytes
    )
    calibrator = Calibrator(substrate)
    n = scenario.n_machines
    alphas = np.empty((n_snapshots, n, n))
    betas = np.empty((n_snapshots, n, n))
    stamps = np.empty(n_snapshots)
    for k in range(n_snapshots):
        stamps[k] = scenario.sim.now
        a, b = calibrator.calibrate_snapshot(k)
        alphas[k], betas[k] = a, b
        scenario.sim.run_until(scenario.sim.now + gap_seconds)
    return CalibrationTrace(alpha=alphas, beta=betas, timestamps=stamps)
