"""Synthetic EC2-like trace generation.

:func:`generate_trace` wires the pieces together: place the cluster, derive
constant bands, then iterate the volatility model over T snapshots. The
resulting :class:`~repro.cloudsim.trace.CalibrationTrace` has the paper's
reported EC2 structure (a clear band per link + unpredictable samples +
occasional regime changes), and the default parameters are tuned so that
``Norm(N_E)`` of a decomposition over the trace lands near 0.1 — the value
the paper measured on EC2 in August 2013.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import check_positive
from ..errors import ValidationError
from ..utils.seeding import spawn_rng
from .bands import BandTiers
from .dynamics import DynamicsConfig, VolatilityModel
from .placement import Placement, place_cluster
from .trace import CalibrationTrace

__all__ = ["TraceConfig", "generate_trace"]


@dataclass(frozen=True, slots=True)
class TraceConfig:
    """Full description of a synthetic calibration campaign.

    Attributes
    ----------
    n_machines:
        Virtual-cluster size N.
    n_snapshots:
        Number of calibration snapshots T (the paper's week at one run per
        30 minutes gives ≈336; most studies replay shorter windows).
    interval_seconds:
        Time between snapshots (default 1800 s = 30 min, per Sec V-A).
    tiers, dynamics:
        Band tiers and temporal dynamics (see their classes).
    colocation, n_racks_total, servers_per_rack:
        Placement parameters (see :func:`~repro.cloudsim.placement.place_cluster`).
    """

    n_machines: int
    n_snapshots: int
    interval_seconds: float = 1800.0
    tiers: BandTiers = field(default_factory=BandTiers)
    dynamics: DynamicsConfig = field(default_factory=DynamicsConfig)
    colocation: float = 0.5
    n_racks_total: int = 1000
    servers_per_rack: int = 32

    def __post_init__(self) -> None:
        if int(self.n_machines) < 2:
            raise ValidationError("n_machines must be >= 2")
        if int(self.n_snapshots) < 1:
            raise ValidationError("n_snapshots must be >= 1")
        check_positive(self.interval_seconds, "interval_seconds")


def generate_trace(
    config: TraceConfig,
    *,
    seed: int | np.random.Generator | None = None,
    placement: Placement | None = None,
) -> CalibrationTrace:
    """Generate a synthetic calibration trace for *config*.

    Parameters
    ----------
    config:
        Campaign description.
    seed:
        Seed or generator; drives placement, bands and dynamics.
    placement:
        Optional pre-computed placement (lets experiments reuse one
        placement across several traces, e.g. for noise sweeps).
    """
    rng = spawn_rng(seed)
    if placement is None:
        placement = place_cluster(
            config.n_machines,
            n_racks_total=config.n_racks_total,
            servers_per_rack=config.servers_per_rack,
            colocation=config.colocation,
            seed=rng,
        )
    elif placement.n_machines != config.n_machines:
        raise ValidationError("placement size does not match config.n_machines")

    model = VolatilityModel(placement, config.tiers, config.dynamics, seed=rng)
    t, n = config.n_snapshots, config.n_machines
    alpha = np.empty((t, n, n))
    beta = np.empty((t, n, n))
    for k in range(t):
        alpha[k], beta[k] = model.sample()
    timestamps = np.arange(t, dtype=np.float64) * config.interval_seconds
    return CalibrationTrace(alpha=alpha, beta=beta, timestamps=timestamps)
