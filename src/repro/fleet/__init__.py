"""Fleet-scale parallel decomposition service.

Runs many independent per-cluster calibration/maintenance sessions (paper
Algorithm 1) concurrently across a process pool, with traces shipped
zero-copy through shared memory and warm solver state round-tripped between
scheduler and workers as picklable session capsules. See
:class:`FleetScheduler` for the scheduling contract (bounded queue,
backpressure, round-robin fairness, deterministic per-cluster results).
"""

from .config import ClusterSpec, FleetConfig
from .report import ClusterReport, FleetReport
from .scheduler import FleetScheduler
from .shm import SharedTraceBlock, TraceBlockDescriptor
from .worker import BatchResult, BatchTask, worker_main

__all__ = [
    "BatchResult",
    "BatchTask",
    "ClusterReport",
    "ClusterSpec",
    "FleetConfig",
    "FleetReport",
    "FleetScheduler",
    "SharedTraceBlock",
    "TraceBlockDescriptor",
    "worker_main",
]
