"""Unit tests for the Fastest-Node-First tree construction (paper Fig 1)."""

import numpy as np
import pytest

from repro.collectives.fnf import fnf_tree
from repro.errors import ValidationError


def wmatrix(vals):
    w = np.asarray(vals, dtype=float)
    np.fill_diagonal(w, 0.0)
    return w


class TestFNFSemantics:
    def test_first_pick_is_roots_best_link(self):
        w = wmatrix(
            [
                [0, 5, 1, 7],
                [5, 0, 5, 5],
                [1, 5, 0, 5],
                [7, 5, 5, 0],
            ]
        )
        t = fnf_tree(w, 0)
        assert t.children[0][0] == 2  # weight 1 is the best link from the root

    def test_iteration_doubling_structure(self):
        # Uniform weights: each iteration doubles the selected set, so the
        # tree is a binomial-shaped tree; ties resolve to the lowest index.
        n = 8
        w = wmatrix(np.ones((n, n)))
        t = fnf_tree(w, 0)
        # Iteration 1: 0 picks 1. Iteration 2: 0 picks 2, 1 picks 3. ...
        assert t.children[0][:2] == (1, 2)
        assert t.children[1][0] == 3
        assert t.depth() == 3

    def test_receiver_removed_immediately(self):
        # Two senders must not pick the same receiver within an iteration.
        w = wmatrix(
            [
                [0, 1, 2, 9, 9, 9],
                [9, 0, 9, 1, 2, 9],
                [9, 9, 0, 9, 1, 2],
                [9] * 6,
                [9] * 6,
                [9] * 6,
            ]
        )
        # Iter 1: 0→1. Iter 2: 0→2, then 1 wants 3 (weight 1). Iter 3:
        # 0 wants 3 but it's taken? No — iter2 assigns 3 to 1 already; then
        # iter3: 0 picks 4 or 5... The key invariant: all receivers distinct.
        t = fnf_tree(w, 0)
        kids = [c for ks in t.children for c in ks]
        assert len(kids) == len(set(kids)) == 5

    def test_paper_fig1_example_semantics(self):
        # Reconstruction of the Fig 1 walk-through: root machine 0 (paper's
        # Machine 1); first iteration picks machine 2 (paper's Machine 3,
        # smallest weight from the root); second iteration the root picks
        # machine 1 and machine 2 picks machine 5.
        w = wmatrix(
            [
                [0, 2, 1, 4, 5, 6],
                [2, 0, 3, 4, 5, 6],
                [1, 3, 0, 4, 5, 2],
                [4, 4, 4, 0, 6, 6],
                [5, 5, 5, 6, 0, 6],
                [6, 6, 2, 6, 6, 0],
            ]
        )
        t = fnf_tree(w, 0)
        assert t.children[0][0] == 2
        assert t.children[0][1] == 1
        assert t.children[2][0] == 5

    def test_changing_one_weight_changes_tree(self):
        # The paper's Fig 1(a) vs 1(b) point: individual link weights matter.
        w1 = wmatrix(
            [
                [0, 2, 1, 4],
                [2, 0, 3, 4],
                [1, 3, 0, 9],
                [4, 4, 9, 0],
            ]
        )
        w2 = w1.copy()
        w2[0, 2] = 4.0  # degrade the root's favorite link
        t1 = fnf_tree(w1, 0)
        t2 = fnf_tree(w2, 0)
        assert t1.children[0][0] == 2
        assert t2.children[0][0] == 1
        assert t1.longest_path_weight(w1) != t2.longest_path_weight(w2)

    def test_asymmetric_weights_use_sender_row(self):
        w = np.array(
            [
                [0.0, 9.0, 1.0, 9.0],
                [9.0, 0.0, 9.0, 9.0],
                [9.0, 1.0, 0.0, 2.0],
                [9.0, 9.0, 9.0, 0.0],
            ]
        )
        t = fnf_tree(w, 0)
        # Iter 1: the root's cheapest *outgoing* link (row 0) is to 2. Iter 2
        # scans S in insertion order: the root picks first (1 and 3 both cost
        # 9 from it → lowest index 1), then machine 2's row picks 3 (cost 2,
        # cheaper than its column counterpart 9 — sender rows, not columns).
        assert t.children[0] == (2, 1)
        assert t.children[2] == (3,)


class TestFNFValidation:
    def test_single_node(self):
        t = fnf_tree(np.zeros((1, 1)), 0)
        assert t.n_nodes == 1

    def test_root_out_of_range(self):
        with pytest.raises(ValidationError):
            fnf_tree(wmatrix(np.ones((3, 3))), 3)

    def test_infinite_weight_rejected(self):
        w = wmatrix(np.ones((3, 3)))
        w[0, 1] = np.inf
        with pytest.raises(ValidationError, match="finite"):
            fnf_tree(w, 0)

    def test_spans_all_nodes(self):
        rng = np.random.default_rng(0)
        w = rng.uniform(1, 5, size=(17, 17))
        np.fill_diagonal(w, 0.0)
        t = fnf_tree(w, 4)
        assert int(t.subtree_sizes()[4]) == 17
