"""Placement-derived constant performance bands.

Each ordered VM pair gets a long-term (α, β) level from its placement tier —
same-rack pairs ride the top-of-rack switch, cross-rack pairs share the
oversubscribed aggregation layer — multiplied by per-pair lognormal jitter.
The jitter models the heterogeneity the paper cites ("machine pairs can have
very different network performance" [14], [2]): two cross-rack pairs on EC2
routinely differ by 2× even in their *long-term* levels, which is exactly
what makes link selection profitable.

Defaults approximate EC2 medium instances circa 2013: same-rack ≈ 1 Gb/s
(125 MB/s) with ~0.2 ms latency; cross-rack ≈ 40–60 MB/s effective with
~0.5 ms latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_nonnegative, check_positive
from ..utils.seeding import spawn_rng
from .placement import Placement

__all__ = ["BandTiers", "LinkBands", "derive_bands"]


@dataclass(frozen=True, slots=True)
class BandTiers:
    """Tier levels for the two placement classes.

    Bandwidths in bytes/second, latencies in seconds. The jitter σ values
    control the lognormal per-pair multiplier applied to α and β (with
    independent draws) — long-term pair heterogeneity. Same-rack pairs share
    one ToR switch and are nearly uniform; cross-rack pairs traverse the
    oversubscribed aggregation layer and vary widely, which is what makes a
    rack-spanning cluster profitable to optimize (paper Fig 8).

    ``jitter_sigma``, when given, overrides both per-tier values (kept for
    experiments that want a single knob).
    """

    same_rack_bandwidth: float = 125e6
    cross_rack_bandwidth: float = 50e6
    same_rack_latency: float = 2.0e-4
    cross_rack_latency: float = 5.0e-4
    same_rack_jitter_sigma: float = 0.02
    cross_rack_jitter_sigma: float = 0.30
    jitter_sigma: float | None = None

    def __post_init__(self) -> None:
        check_positive(self.same_rack_bandwidth, "same_rack_bandwidth")
        check_positive(self.cross_rack_bandwidth, "cross_rack_bandwidth")
        check_positive(self.same_rack_latency, "same_rack_latency")
        check_positive(self.cross_rack_latency, "cross_rack_latency")
        check_nonnegative(self.same_rack_jitter_sigma, "same_rack_jitter_sigma")
        check_nonnegative(self.cross_rack_jitter_sigma, "cross_rack_jitter_sigma")
        if self.jitter_sigma is not None:
            check_nonnegative(self.jitter_sigma, "jitter_sigma")
            object.__setattr__(self, "same_rack_jitter_sigma", float(self.jitter_sigma))
            object.__setattr__(self, "cross_rack_jitter_sigma", float(self.jitter_sigma))


@dataclass(frozen=True)
class LinkBands:
    """Long-term (α, β) levels for every ordered pair of one cluster.

    ``alpha[i, j]`` / ``beta[i, j]`` are the constant-band levels of the link
    i→j. Diagonals are 0 (α) and +inf (β) so that self-transfer time is zero
    under the α-β model without special-casing.
    """

    alpha: np.ndarray
    beta: np.ndarray

    def __post_init__(self) -> None:
        a = np.asarray(self.alpha, dtype=np.float64).copy()
        b = np.asarray(self.beta, dtype=np.float64).copy()
        if a.shape != b.shape or a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError("alpha and beta must be matching square matrices")
        a.setflags(write=False)
        b.setflags(write=False)
        object.__setattr__(self, "alpha", a)
        object.__setattr__(self, "beta", b)

    @property
    def n_machines(self) -> int:
        return self.alpha.shape[0]


def derive_bands(
    placement: Placement,
    tiers: BandTiers | None = None,
    *,
    seed: int | np.random.Generator | None = None,
) -> LinkBands:
    """Draw per-pair constant bands from *placement* and *tiers*.

    Jitter is drawn independently per ordered pair, so the i→j and j→i bands
    differ slightly — matching measured EC2 asymmetry.
    """
    t = tiers if tiers is not None else BandTiers()
    rng = spawn_rng(seed)
    n = placement.n_machines
    same = placement.same_rack_matrix()

    base_beta = np.where(same, t.same_rack_bandwidth, t.cross_rack_bandwidth)
    base_alpha = np.where(same, t.same_rack_latency, t.cross_rack_latency)

    sigma = np.where(same, t.same_rack_jitter_sigma, t.cross_rack_jitter_sigma)
    if np.any(sigma > 0):
        jb = np.exp(sigma * rng.standard_normal((n, n)))
        ja = np.exp(sigma * rng.standard_normal((n, n)))
    else:
        jb = np.ones((n, n))
        ja = np.ones((n, n))

    beta = base_beta * jb
    alpha = base_alpha * ja
    np.fill_diagonal(alpha, 0.0)
    np.fill_diagonal(beta, np.inf)
    return LinkBands(alpha=alpha, beta=beta)
