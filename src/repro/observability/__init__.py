"""Lightweight instrumentation for the decomposition stack.

Two pieces:

* :class:`Instrumentation` — a passive sink of counters, timers and
  per-solve :class:`SolveSpan` records (see
  :mod:`repro.observability.instrumentation`).
* an *activation stack* — :func:`instrumented` pushes a sink for the
  duration of a ``with`` block, and instrumented call sites
  (:func:`repro.core.solvers.solve_rpca`, the engine, the replay harness)
  emit into **every** active sink via :func:`emit_count` /
  :func:`emit_span` / :func:`emit_time`.

The stack design lets ownership and observation nest: a
:class:`~repro.core.engine.DecompositionEngine` activates its own sink
around each solve, while ``repro ... --profile`` activates a CLI-level sink
around the whole command — both see the same spans without knowing about
each other. With no sink active, emission is a cheap no-op, so library code
can emit unconditionally.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .instrumentation import Instrumentation, SolveSpan

__all__ = [
    "Instrumentation",
    "SolveSpan",
    "instrumented",
    "active",
    "emit_count",
    "emit_span",
    "emit_time",
    "timed",
]

_STACK: list[Instrumentation] = []


@contextmanager
def instrumented(instr: Instrumentation | None = None) -> Iterator[Instrumentation]:
    """Activate *instr* (a fresh sink if ``None``) for the enclosed block."""
    sink = instr if instr is not None else Instrumentation()
    _STACK.append(sink)
    try:
        yield sink
    finally:
        _STACK.remove(sink)


def active() -> tuple[Instrumentation, ...]:
    """The currently active sinks, innermost last, each listed once."""
    seen: list[Instrumentation] = []
    for sink in _STACK:
        if not any(sink is s for s in seen):
            seen.append(sink)
    return tuple(seen)


def emit_count(name: str, inc: int = 1) -> None:
    """Increment counter *name* in every active sink."""
    for sink in active():
        sink.count(name, inc)


def emit_span(span: SolveSpan) -> None:
    """Record *span* in every active sink."""
    for sink in active():
        sink.record_span(span)


def emit_time(name: str, seconds: float) -> None:
    """Accumulate *seconds* under timer *name* in every active sink."""
    for sink in active():
        sink.add_time(name, seconds)


@contextmanager
def timed(name: str) -> Iterator[None]:
    """Time the enclosed block into timer *name* of every active sink."""
    import time

    start = time.perf_counter()
    try:
        yield
    finally:
        emit_time(name, time.perf_counter() - start)
