"""Solver registry: one dispatch point for every RPCA backend.

All solvers share the contract ``a → result`` where the result exposes
``low_rank``, ``sparse``, ``rank``, ``iterations``, ``converged`` and
``residual`` attributes (duck-typed across :class:`~repro.core.apg.APGResult`,
:class:`~repro.core.ialm.IALMResult` and
:class:`~repro.core.row_constant.RowConstantResult`).
"""

from __future__ import annotations

from typing import Any, Callable, Protocol

import numpy as np

from .apg import rpca_apg
from .ialm import rpca_ialm
from .pca import pca_rank1_decomposition
from .row_constant import row_constant_decomposition

__all__ = ["RPCAResult", "solve_rpca", "available_solvers", "register_solver"]


class RPCAResult(Protocol):
    """Structural type every solver result satisfies."""

    low_rank: np.ndarray
    sparse: np.ndarray
    rank: int
    iterations: int
    converged: bool
    residual: float


_SOLVERS: dict[str, Callable[..., Any]] = {
    "apg": rpca_apg,
    "ialm": rpca_ialm,
    "row_constant": lambda a, **kw: row_constant_decomposition(a),
    # Non-robust straw man for the paper's PCA-vs-RPCA motivation (Sec II-B).
    "pca": lambda a, **kw: pca_rank1_decomposition(a),
}


def available_solvers() -> tuple[str, ...]:
    """Names accepted by :func:`solve_rpca`, in registration order."""
    return tuple(_SOLVERS)


def register_solver(name: str, fn: Callable[..., Any]) -> None:
    """Register a custom solver under *name* (overwrites silently)."""
    if not callable(fn):
        raise TypeError("solver must be callable")
    _SOLVERS[str(name)] = fn


def solve_rpca(a: np.ndarray, solver: str = "apg", **kwargs: Any) -> RPCAResult:
    """Run the named RPCA solver on data matrix *a*.

    Parameters
    ----------
    a:
        Data matrix.
    solver:
        One of :func:`available_solvers` (default ``"apg"``, the paper's
        choice).
    **kwargs:
        Forwarded to the solver (``lam``, ``tol``, ``max_iter``, ...).
    """
    try:
        fn = _SOLVERS[solver]
    except KeyError:
        raise ValueError(
            f"unknown RPCA solver {solver!r}; available: {sorted(_SOLVERS)}"
        ) from None
    return fn(a, **kwargs)
