"""Property-based tests for the flow simulator: conservation and sanity.

The invariants here are the ones a fluid simulator must never break:
every scheduled flow completes (given enough horizon), bytes are conserved,
completions never precede arrivals, and durations are bounded below by the
uncontended transfer time.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.fattree import FatTreeTopology
from repro.netsim.simulator import FlowSimulator
from repro.netsim.topology import TreeTopology

MB = 1024 * 1024


def run_random_flows(topo, n_flows, seed):
    rng = np.random.default_rng(seed)
    sim = FlowSimulator(topo)
    scheduled = []
    for _ in range(n_flows):
        s, d = rng.choice(topo.n_machines, size=2, replace=False)
        size = float(rng.uniform(0.1, 20) * MB)
        at = float(rng.uniform(0, 2))
        sim.schedule_flow(at, int(s), int(d), size)
        scheduled.append((int(s), int(d), size, at))
    sim.run_until_idle(horizon=10_000)
    return sim, scheduled


class TestTreeConservation:
    @given(st.integers(1, 25), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_all_flows_complete_and_conserve_bytes(self, n_flows, seed):
        topo = TreeTopology(n_racks=3, servers_per_rack=4)
        sim, scheduled = run_random_flows(topo, n_flows, seed)
        assert len(sim.completed) == n_flows
        assert sim.n_active == 0
        total_scheduled = sum(s for _, _, s, _ in scheduled)
        total_delivered = sum(r.size_bytes for r in sim.completed)
        assert np.isclose(total_delivered, total_scheduled, rtol=1e-12)

    @given(st.integers(1, 20), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_durations_bounded_below_by_uncontended_time(self, n_flows, seed):
        topo = TreeTopology(n_racks=3, servers_per_rack=4)
        sim, _ = run_random_flows(topo, n_flows, seed)
        for rec in sim.completed:
            path = topo.path(rec.src, rec.dst)
            best_rate = min(topo.capacities[l] for l in path)
            min_duration = rec.size_bytes / best_rate + topo.path_latency(
                rec.src, rec.dst
            )
            assert rec.duration >= min_duration - 1e-6

    @given(st.integers(1, 20), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_completion_after_start(self, n_flows, seed):
        topo = TreeTopology(n_racks=2, servers_per_rack=4)
        sim, _ = run_random_flows(topo, n_flows, seed)
        for rec in sim.completed:
            assert rec.end_time > rec.start_time


class TestFatTreeConservation:
    @given(st.integers(1, 15), st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_fattree_flows_complete(self, n_flows, seed):
        topo = FatTreeTopology(k=4)
        sim, scheduled = run_random_flows(topo, n_flows, seed)
        assert len(sim.completed) == n_flows
        total = sum(s for _, _, s, _ in scheduled)
        assert np.isclose(sum(r.size_bytes for r in sim.completed), total, rtol=1e-12)
