"""EC2 substitute: synthetic virtual-cluster network-performance traces.

The paper's real experiments calibrate a week of all-link measurements on
Amazon EC2 and then *replay the trace* through the α-β model for all detailed
studies (Sec V-D3). This package generates traces with the same structure the
paper reports — a placement-derived constant band per link, multiplicative
volatility, heavy-tailed interference spikes and rare regime changes (VM
migration) — and provides the same replay and noise-injection machinery.
"""

from .placement import Placement, place_cluster
from .bands import LinkBands, derive_bands, BandTiers
from .dynamics import (
    DynamicsConfig,
    VolatilityModel,
    apply_burst_noise,
    apply_ramp_regime,
    apply_seasonal_regime,
    apply_step_regime,
)
from .trace import CalibrationTrace
from .tracegen import TraceConfig, generate_trace
from .noise import inject_noise_to_target, measure_trace_norm_ne

__all__ = [
    "Placement",
    "place_cluster",
    "LinkBands",
    "derive_bands",
    "BandTiers",
    "DynamicsConfig",
    "VolatilityModel",
    "apply_step_regime",
    "apply_ramp_regime",
    "apply_seasonal_regime",
    "apply_burst_noise",
    "CalibrationTrace",
    "TraceConfig",
    "generate_trace",
    "inject_noise_to_target",
    "measure_trace_norm_ne",
]
