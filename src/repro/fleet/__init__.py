"""Fleet-scale parallel decomposition service.

Runs many independent per-cluster calibration/maintenance sessions (paper
Algorithm 1) concurrently across a process pool, with traces shipped
zero-copy through shared memory and warm solver state round-tripped between
scheduler and workers as picklable session capsules. See
:class:`FleetScheduler` for the scheduling contract (bounded queue,
backpressure, round-robin fairness, deterministic per-cluster results).
"""

from .config import ClusterSpec, FleetConfig
from .report import ClusterReport, FleetReport, FleetSweepReport, SweepClusterResult
from .scheduler import FleetScheduler, SweepShard
from .shm import (
    SharedStackBlock,
    SharedTraceBlock,
    StackBlockDescriptor,
    TraceBlockDescriptor,
)
from .worker import BatchResult, BatchTask, SweepResult, SweepTask, solve_shard, worker_main

__all__ = [
    "BatchResult",
    "BatchTask",
    "ClusterReport",
    "ClusterSpec",
    "FleetConfig",
    "FleetReport",
    "FleetScheduler",
    "FleetSweepReport",
    "SharedStackBlock",
    "SharedTraceBlock",
    "StackBlockDescriptor",
    "SweepClusterResult",
    "SweepResult",
    "SweepShard",
    "SweepTask",
    "TraceBlockDescriptor",
    "solve_shard",
    "worker_main",
]
