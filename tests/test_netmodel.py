"""Unit tests for the α-β model and link statistics."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.netmodel.alphabeta import (
    AlphaBeta,
    transfer_time,
    transfer_time_matrix,
    weight_matrix,
)
from repro.netmodel.linkstats import summarize_link_series


class TestAlphaBeta:
    def test_transfer_time_formula(self):
        ab = AlphaBeta(alpha=0.001, beta=1e8)
        assert ab.time(1e8) == pytest.approx(1.001)

    def test_zero_bytes_is_latency(self):
        ab = AlphaBeta(alpha=0.002, beta=1e6)
        assert ab.time(0) == pytest.approx(0.002)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValidationError):
            AlphaBeta(alpha=-1.0, beta=1e6)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValidationError):
            AlphaBeta(alpha=0.0, beta=0.0)

    def test_scalar_function(self):
        assert transfer_time(0.5, 2.0, 4.0) == pytest.approx(2.5)

    def test_larger_message_takes_longer(self):
        ab = AlphaBeta(alpha=0.001, beta=1e7)
        assert ab.time(2e7) > ab.time(1e7)


class TestTransferTimeMatrix:
    def test_formula_and_zero_diagonal(self):
        alpha = np.array([[0.0, 0.1], [0.2, 0.0]])
        beta = np.array([[np.inf, 10.0], [20.0, np.inf]])
        out = transfer_time_matrix(alpha, beta, 100.0)
        assert out[0, 0] == 0.0 and out[1, 1] == 0.0
        assert out[0, 1] == pytest.approx(10.1)
        assert out[1, 0] == pytest.approx(5.2)

    def test_inf_diagonal_bandwidth_ok(self):
        alpha = np.zeros((2, 2))
        beta = np.full((2, 2), np.inf)
        beta[0, 1] = beta[1, 0] = 1.0
        out = transfer_time_matrix(alpha, beta, 2.0)
        assert out[0, 1] == 2.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            transfer_time_matrix(np.zeros((2, 2)), np.ones((3, 3)), 1.0)

    def test_nonpositive_offdiag_bandwidth_rejected(self):
        alpha = np.zeros((2, 2))
        beta = np.zeros((2, 2))
        with pytest.raises(ValueError, match="positive"):
            transfer_time_matrix(alpha, beta, 1.0)

    def test_weight_matrix_alias(self):
        alpha = np.zeros((2, 2))
        beta = np.full((2, 2), 4.0)
        np.testing.assert_array_equal(
            weight_matrix(alpha, beta, 8.0), transfer_time_matrix(alpha, beta, 8.0)
        )


class TestLinkStats:
    def test_constant_series(self):
        s = summarize_link_series(np.full(50, 3.0))
        assert s.center == 3.0
        assert s.spread == 0.0
        assert s.volatility == 0.0
        assert s.spike_fraction == 0.0

    def test_band_detection(self):
        rng = np.random.default_rng(0)
        x = 10.0 * rng.lognormal(0, 0.05, size=2000)
        s = summarize_link_series(x)
        assert 9.5 < s.center < 10.5
        assert 0.02 < s.volatility < 0.10

    def test_spikes_detected(self):
        rng = np.random.default_rng(1)
        x = 10.0 + 0.1 * rng.standard_normal(1000)
        x[::50] += 5.0  # 2% spikes far outside the band
        s = summarize_link_series(x)
        assert s.spike_fraction == pytest.approx(0.02, abs=0.005)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            summarize_link_series(np.array([]))

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            summarize_link_series(np.array([1.0, np.nan]))

    def test_n_samples(self):
        assert summarize_link_series(np.ones(17)).n_samples == 17
