"""Property-based tests for the workflow makespan model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.workflow import Workflow, WorkflowStage, montage_like_workflow, workflow_makespan

MB = 1024 * 1024


def uniform_net(n, beta=100.0 * MB):
    a = np.zeros((n, n))
    b = np.full((n, n), float(beta))
    np.fill_diagonal(b, np.inf)
    return a, b


def random_assignment(order, n, rng):
    machines = rng.choice(n, size=len(order), replace=len(order) > n)
    return {name: int(m) for name, m in zip(order, machines)}


class TestMakespanProperties:
    @given(st.integers(2, 8), st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_makespan_at_least_critical_compute(self, width, seed):
        wf = montage_like_workflow(width=width, seed=seed)
        g, order = wf.task_graph()
        rng = np.random.default_rng(seed)
        n = len(order)
        alpha, beta = uniform_net(n)
        assignment = random_assignment(order, n, rng)
        ms = workflow_makespan(wf, assignment, alpha, beta)
        # Lower bound: the compute on any root-to-sink path (take the
        # heaviest single stage as a cheap certified bound).
        heaviest = max(
            wf.graph.nodes[s]["stage"].computation_seconds for s in order
        )
        assert ms >= heaviest

    @given(st.integers(2, 6), st.integers(0, 300))
    @settings(max_examples=30, deadline=None)
    def test_all_on_one_machine_equals_serial_compute(self, width, seed):
        wf = montage_like_workflow(width=width, seed=seed)
        _, order = wf.task_graph()
        alpha, beta = uniform_net(4)
        assignment = {name: 0 for name in order}
        ms = workflow_makespan(wf, assignment, alpha, beta)
        serial = sum(
            wf.graph.nodes[s]["stage"].computation_seconds for s in order
        )
        assert np.isclose(ms, serial)

    @given(st.integers(2, 6), st.integers(0, 300), st.floats(1.5, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_faster_network_never_hurts(self, width, seed, speedup):
        wf = montage_like_workflow(width=width, seed=seed)
        _, order = wf.task_graph()
        rng = np.random.default_rng(seed)
        n = len(order)
        alpha, slow_b = uniform_net(n, beta=20.0 * MB)
        _, fast_b = uniform_net(n, beta=20.0 * MB * speedup)
        assignment = random_assignment(order, n, rng)
        slow = workflow_makespan(wf, assignment, alpha, slow_b)
        fast = workflow_makespan(wf, assignment, alpha, fast_b)
        assert fast <= slow + 1e-9

    @given(st.integers(0, 300))
    @settings(max_examples=30, deadline=None)
    def test_adding_an_edge_never_decreases_makespan(self, seed):
        rng = np.random.default_rng(seed)
        wf = Workflow()
        for i in range(4):
            wf.add_stage(WorkflowStage(f"s{i}", computation_seconds=float(rng.uniform(1, 5))))
        wf.add_edge("s0", "s1", 10 * MB)
        wf.add_edge("s1", "s3", 10 * MB)
        _, order = wf.task_graph()
        alpha, beta = uniform_net(4, beta=5 * MB)
        assignment = {name: i for i, name in enumerate(order)}
        before = workflow_makespan(wf, assignment, alpha, beta)
        wf.add_edge("s2", "s3", 30 * MB)
        after = workflow_makespan(wf, assignment, alpha, beta)
        assert after >= before - 1e-9
